"""Flash array geometry and physical addressing.

The paper's Fig. 7 shows the PBA organized along the multi-level flash
hierarchy ``Channel / Bank / LUN / Block / Page / Col`` where *Col* is
the byte offset of a read within a page.  We model the hierarchy as
``channel -> die -> plane -> block -> page`` (bank and LUN collapse
into *die* for timing purposes: a die is the unit that can buffer one
page flush independently) plus the column offset.

The emulated SSD of Table II has 32 GB over 4 channels with 4 KB pages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PhysicalAddress:
    """A fully-resolved flash location (the paper's PBA + Col)."""

    channel: int
    die: int
    plane: int
    block: int
    page: int
    col: int = 0

    def __post_init__(self) -> None:
        for name in ("channel", "die", "plane", "block", "page", "col"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def page_key(self) -> tuple:
        """Identity of the physical page, ignoring the column offset."""
        return (self.channel, self.die, self.plane, self.block, self.page)


@dataclass(frozen=True)
class SSDGeometry:
    """Shape of the flash array.

    Defaults follow Table II: 32 GB over 4 channels with 4 KB pages.
    ``dies_per_channel = 2`` matches the throughput the paper's DDR4
    emulation exhibits (each emulated channel sustains roughly two
    outstanding page flushes): it lands EMB-VectorSum's standalone SLS
    time (Fig. 10a) and RMC3's batch-4 embedding/MLP crossover
    (Fig. 12c) where the paper reports them.
    """

    channels: int = 4
    dies_per_channel: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 2048
    pages_per_block: int = 256
    page_size: int = 4096

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "dies_per_channel",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")

    @property
    def pages_per_die(self) -> int:
        return self.planes_per_die * self.blocks_per_plane * self.pages_per_block

    @property
    def pages_per_channel(self) -> int:
        return self.dies_per_channel * self.pages_per_die

    @property
    def total_pages(self) -> int:
        return self.channels * self.pages_per_channel

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    def page_index_to_address(self, page_index: int, col: int = 0) -> PhysicalAddress:
        """Decode a flat physical page number into the flash hierarchy.

        Pages are numbered so that *consecutive pages land on
        consecutive channels* (channel-major striping), then rotate
        across dies — this is the layout that lets the EV-FMC path
        stripe embedding reads "over all flash channels and dies"
        (Section IV-B2).
        """
        if not 0 <= page_index < self.total_pages:
            raise ValueError(
                f"page index {page_index} out of range [0, {self.total_pages})"
            )
        if not 0 <= col < self.page_size:
            raise ValueError(f"column {col} out of range [0, {self.page_size})")
        channel = page_index % self.channels
        rest = page_index // self.channels
        die = rest % self.dies_per_channel
        rest //= self.dies_per_channel
        plane = rest % self.planes_per_die
        rest //= self.planes_per_die
        page = rest % self.pages_per_block
        block = rest // self.pages_per_block
        return PhysicalAddress(
            channel=channel, die=die, plane=plane, block=block, page=page, col=col
        )

    def address_to_page_index(self, address: PhysicalAddress) -> int:
        """Inverse of :meth:`page_index_to_address` (ignores ``col``)."""
        rest = address.block * self.pages_per_block + address.page
        rest = rest * self.planes_per_die + address.plane
        rest = rest * self.dies_per_channel + address.die
        return rest * self.channels + address.channel

    def split_page_indices(self, page_indices) -> tuple:
        """Batched channel/die decode of flat physical page numbers.

        The vectorized counterpart of :meth:`page_index_to_address`
        restricted to the two timing-relevant coordinates; returns
        ``(channel_ids, die_ids)`` int64 arrays.
        """
        page_indices = np.asarray(page_indices, dtype=np.int64)
        if page_indices.size:
            bounds = (page_indices < 0) | (page_indices >= self.total_pages)
            if bounds.any():
                bad = int(page_indices[bounds][0])
                raise ValueError(
                    f"page index {bad} out of range [0, {self.total_pages})"
                )
        channel_ids = page_indices % self.channels
        die_ids = (page_indices // self.channels) % self.dies_per_channel
        return channel_ids, die_ids

    def byte_to_page(self, byte_offset: int) -> tuple:
        """Split a flat byte offset into ``(logical_page, col)``."""
        if byte_offset < 0:
            raise ValueError("negative byte offset")
        return byte_offset // self.page_size, byte_offset % self.page_size
