"""SSD controller front end.

Combines the NVMe-facing block I/O path and the embedding-vector path
over one FTL and one flash array, mirroring Fig. 5:

* block I/O requests go FTL -> FMC -> (whole pages) -> host;
* EV requests go EV Translator -> FTL -> MUX -> EV-FMC -> (vectors) ->
  DEMUX -> EV Sum.

The MUX's round-robin arbitration between the two paths is modelled by
the shared FTL service point; the Path Buffer is the ``tag`` carried by
every :class:`repro.ssd.fmc.ReadRequest`.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.obs import names, resolve_tracer
from repro.sim import Server, Simulator
from repro.ssd import fastpath
from repro.ssd.flash import FlashArray
from repro.ssd.fmc import EVFlashMemoryController, ReadRequest
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry
from repro.ssd.stats import IOStatistics
from repro.ssd.timing import SSDTimingModel
from repro.ssd.vcache import VectorCache


class SSDController:
    """Device-side controller: FTL + FMC/EV-FMC over one flash array."""

    def __init__(
        self,
        sim: Simulator,
        geometry: Optional[SSDGeometry] = None,
        timing: Optional[SSDTimingModel] = None,
        ftl: Optional[FlashTranslationLayer] = None,
        stats: Optional[IOStatistics] = None,
        tracer=None,
        vcache: Optional[VectorCache] = None,
    ) -> None:
        self.sim = sim
        self.geometry = geometry or SSDGeometry()
        self.stats = stats if stats is not None else IOStatistics()
        #: Optional controller-DRAM hot-vector cache consulted by the
        #: Embedding Lookup Engine before EV translation; ``None`` (the
        #: default) reproduces the paper's cache-free critical path.
        self.vcache = vcache
        #: Span tracer (``None`` defers to the RMSSD_TRACE flag via
        #: :func:`repro.obs.resolve_tracer`; disabled -> no-op tracer).
        self.tracer = resolve_tracer(tracer)
        self.timing = timing or SSDTimingModel(page_size=self.geometry.page_size)
        self.flash = FlashArray(sim, self.geometry, self.timing, self.stats)
        self.ftl = ftl or FlashTranslationLayer(self.geometry)
        if getattr(sim, "sanitizer", None) is not None:
            self.ftl.attach_sanitizer(sim.sanitizer)
        self.fmc = EVFlashMemoryController(sim, self.flash)
        # The MUX: block I/O and EV requests share one translation
        # pipeline; FIFO service approximates the round-robin arbiter.
        self._ftl_server = Server(sim, names.SERVER_FTL_MUX, kind=names.FTL)

    def _ftl_lookup(self):
        """Event: one arbitrated pass through the shared FTL stage."""
        return self._ftl_server.serve(
            self.timing.cycles_to_ns(self.ftl.lookup_cycles)
        )

    def serve_ftl_batch(self, count: int) -> np.ndarray:
        """Fast-path replay of ``count`` FTL MUX passes issued now.

        Returns the times each request leaves the shared FTL stage (in
        issue order), updating the server's bookkeeping exactly as the
        DES would; see :func:`repro.ssd.fastpath.serialize_server`.
        """
        return fastpath.serialize_server(
            self._ftl_server,
            count,
            self.timing.cycles_to_ns(self.ftl.lookup_cycles),
        )

    # ------------------------------------------------------------------
    # Observability: FTL / channel spans for one batch
    # ------------------------------------------------------------------
    def batch_mark(self) -> Tuple[int, Tuple[int, ...]]:
        """Bookkeeping mark taken before a batch, for span emission.

        Captures job counts only; the corresponding *times* are read
        from the servers' ``free_at`` after the batch, which the fast
        path writes back bitwise-identically to the DES (PR 2's
        equivalence contract) — so the spans derived from a mark are
        identical on both paths by construction.
        """
        return (
            self._ftl_server.jobs_served,
            tuple(channel.bus.jobs_served for channel in self.flash.channels),
        )

    def emit_batch_spans(self, start_ns: float, mark) -> None:
        """Emit ``ftl`` and per-channel spans for work since ``mark``.

        The FTL span covers the shared MUX stage from batch issue to
        its last job's departure; each channel span covers that
        channel's bus from issue to its final transfer, with the job
        count and accumulated bus busy time as arguments.  Channels
        are concurrent, so each lives on its own track.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        ftl_jobs_before, channel_jobs_before = mark
        ftl_jobs = self._ftl_server.jobs_served - ftl_jobs_before
        if ftl_jobs > 0:
            tracer.add_span(
                names.FTL,
                start_ns,
                self._ftl_server.free_at,
                cat="ssd",
                track="ssd.ftl",
                args={"jobs": ftl_jobs},
            )
        for channel, jobs_before in zip(
            self.flash.channels, channel_jobs_before
        ):
            jobs = channel.bus.jobs_served - jobs_before
            if jobs > 0:
                tracer.add_span(
                    channel.name,
                    start_ns,
                    channel.bus.free_at,
                    cat="ssd",
                    track=f"ssd.{channel.name}",
                    args={"jobs": jobs},
                )

    def translate_vector_offsets(self, byte_offsets, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Batched address resolution of :meth:`read_vector_proc`.

        Maps device byte offsets to ``(physical_pages, cols)`` arrays
        with the same straddle validation, without simulated time (the
        FTL stage's timing is replayed by :meth:`serve_ftl_batch`).
        """
        byte_offsets = np.asarray(byte_offsets, dtype=np.int64)
        if byte_offsets.size and int(byte_offsets.min()) < 0:
            raise ValueError("negative byte offset")
        page_size = self.geometry.page_size
        lbas = byte_offsets // page_size
        cols = byte_offsets % page_size
        straddlers = cols + size > page_size
        if byte_offsets.size and bool(straddlers.any()):
            offset = int(byte_offsets[straddlers][0])
            raise ValueError(
                f"vector read at offset {offset} size {size} straddles a page"
            )
        return self.ftl.translate_array(lbas), cols

    # ------------------------------------------------------------------
    # Functional writes (used to lay out embedding tables / files)
    # ------------------------------------------------------------------
    def write_logical(self, byte_offset: int, data: bytes) -> None:
        """Write ``data`` at a logical byte offset (crosses pages)."""
        page_size = self.geometry.page_size
        cursor = 0
        while cursor < len(data):
            lba, col = self.geometry.byte_to_page(byte_offset + cursor)
            chunk = min(page_size - col, len(data) - cursor)
            physical = self.ftl.map_write(lba)
            self.flash.write_page(physical, data[cursor : cursor + chunk], offset=col)
            cursor += chunk

    def write_block_proc(self, lba: int, data: bytes) -> Generator:
        """Process: timed page write through the block path."""
        if len(data) > self.geometry.page_size:
            raise ValueError("write exceeds one page")
        yield self._ftl_lookup()
        physical = self.ftl.map_write(lba)
        yield from self.flash.write_page_proc(physical, data)
        return lba

    def peek_logical(self, byte_offset: int, size: int) -> bytes:
        """Functional read (no simulated time), for verification."""
        out = bytearray()
        page_size = self.geometry.page_size
        cursor = 0
        while cursor < size:
            lba, col = self.geometry.byte_to_page(byte_offset + cursor)
            chunk = min(page_size - col, size - cursor)
            physical = self.ftl.translate(lba)
            out += self.flash.peek(physical, col, chunk)
            cursor += chunk
        return bytes(out)

    # ------------------------------------------------------------------
    # Block I/O path (page granularity, crosses the host link)
    # ------------------------------------------------------------------
    def read_block_proc(self, lba: int, tag: object = None) -> Generator:
        """Process: conventional page read returned to the host."""
        yield self._ftl_lookup()
        physical = self.ftl.translate(lba)
        request = yield from self.fmc.read_page(physical, tag=tag, to_host=True)
        return request

    def read_bytes_block_proc(self, byte_offset: int, size: int) -> Generator:
        """Process: host read of an arbitrary byte range via page I/O.

        Every touched page is read and transferred whole — this is the
        page-alignment read amplification of Section III-B2(a).
        """
        page_size = self.geometry.page_size
        first = byte_offset // page_size
        last = (byte_offset + size - 1) // page_size
        requests: List[ReadRequest] = []
        events = []
        for lba in range(first, last + 1):
            events.append(self.sim.process(self.read_block_proc(lba)))
        results = yield self.sim.all_of(events)
        requests.extend(results)
        data = bytearray()
        for lba, request in zip(range(first, last + 1), results):
            data += request.data
        start = byte_offset - first * page_size
        return bytes(data[start : start + size])

    # ------------------------------------------------------------------
    # Embedding-vector path (vector granularity, stays in the device)
    # ------------------------------------------------------------------
    def read_vector_proc(self, byte_offset: int, size: int, tag: object = None) -> Generator:
        """Process: vector-grained read of ``size`` bytes.

        The caller guarantees the vector does not straddle a page
        boundary (the layout module aligns vectors; see
        :mod:`repro.embedding.layout`).
        """
        yield self._ftl_lookup()
        lba, col = self.geometry.byte_to_page(byte_offset)
        if col + size > self.geometry.page_size:
            raise ValueError(
                f"vector read at offset {byte_offset} size {size} straddles a page"
            )
        physical = self.ftl.translate(lba)
        request = yield from self.fmc.read_vector(physical, col, size, tag=tag)
        return request

    def read_page_internal_proc(self, lba: int, tag: object = None) -> Generator:
        """Process: page read consumed inside the device (EMB-PageSum)."""
        yield self._ftl_lookup()
        physical = self.ftl.translate(lba)
        request = yield from self.fmc.read_page(physical, tag=tag, to_host=False)
        return request
