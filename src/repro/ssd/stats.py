"""I/O traffic accounting.

The paper reports three traffic-related results that all come from the
same counters:

* Fig. 3 — read amplification of the naive SSD deployment (bytes read
  from the device / bytes the model actually needed).
* Table IV — I/O traffic *reduction factor* of each ISC realization
  relative to the SSD-S baseline (host<->SSD transferred bytes).
* Section VI-C — RM-SSD transfers only the MMIO-width result per
  inference (~64 B).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The raw counters, in declaration order (shared by the live
#: :class:`IOStatistics` and the frozen :class:`IOSnapshot`).
COUNTER_FIELDS = (
    "host_read_bytes",
    "host_write_bytes",
    "flash_page_reads",
    "flash_vector_reads",
    "flash_bus_bytes",
    "useful_bytes",
    "cache_hits",
    "cache_misses",
    "vcache_hits",
    "vcache_misses",
    "vcache_evictions",
    "vcache_fills",
)


class IOView:
    """Derived traffic metrics over the raw counters.

    Mixed into both the live mutable counters and their frozen
    snapshots, so a measurement window (``stats.diff(before)``) answers
    the same questions as the running totals.
    """

    @property
    def read_amplification(self) -> float:
        """Host-observed read traffic / useful bytes (Fig. 3 metric)."""
        if self.useful_bytes == 0:
            return 0.0
        return self.host_read_bytes / self.useful_bytes

    @property
    def flash_amplification(self) -> float:
        """Channel-bus traffic / useful bytes (device-internal view)."""
        if self.useful_bytes == 0:
            return 0.0
        return self.flash_bus_bytes / self.useful_bytes

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def vcache_hit_ratio(self) -> float:
        """Controller-DRAM vector-cache hit ratio (Fig. 14 metric)."""
        total = self.vcache_hits + self.vcache_misses
        return self.vcache_hits / total if total else 0.0

    def reduction_factor_vs(self, baseline: "IOView") -> float:
        """Table IV metric: baseline host traffic / this host traffic."""
        own = self.host_read_bytes
        if own == 0:
            return float("inf")
        return baseline.host_read_bytes / own

    def as_dict(self) -> dict:
        data = {name: getattr(self, name) for name in COUNTER_FIELDS}
        data["read_amplification"] = self.read_amplification
        data["flash_amplification"] = self.flash_amplification
        data["cache_hit_ratio"] = self.cache_hit_ratio
        data["vcache_hit_ratio"] = self.vcache_hit_ratio
        return data


@dataclass(frozen=True)
class IOSnapshot(IOView):
    """Immutable point-in-time (or interval) copy of the counters."""

    host_read_bytes: int = 0
    host_write_bytes: int = 0
    flash_page_reads: int = 0
    flash_vector_reads: int = 0
    flash_bus_bytes: int = 0
    useful_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    vcache_hits: int = 0
    vcache_misses: int = 0
    vcache_evictions: int = 0
    vcache_fills: int = 0


@dataclass
class IOStatistics(IOView):
    """Mutable counter bundle shared by a device and its host model."""

    #: Bytes moved from the SSD to the host (page reads, DMA results).
    host_read_bytes: int = 0
    #: Bytes moved from the host to the SSD (writes, indices, dense inputs).
    host_write_bytes: int = 0
    #: Number of full-page reads served by the flash array.
    flash_page_reads: int = 0
    #: Number of vector-grained reads served by the flash array.
    flash_vector_reads: int = 0
    #: Bytes transferred over the flash channel buses.
    flash_bus_bytes: int = 0
    #: Bytes the application actually consumed (embedding vectors, etc.).
    useful_bytes: int = 0
    #: Page-cache hits/misses observed on the host path (if any).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Controller-DRAM vector-cache hits/misses on the device lookup
    #: path (zero unless an RM-SSD ``vcache`` is configured), plus the
    #: cache's own churn (evicted entries and admitted fills) so a
    #: measurement window shows *why* its hit ratio moved.
    vcache_hits: int = 0
    vcache_misses: int = 0
    vcache_evictions: int = 0
    vcache_fills: int = 0

    def record_page_read(self, page_size: int, to_host: bool = True) -> None:
        """A full flash page read; optionally also crossing to the host."""
        self.flash_page_reads += 1
        self.flash_bus_bytes += page_size
        if to_host:
            self.host_read_bytes += page_size

    def record_vector_read(self, ev_size: int) -> None:
        """A vector-grained flash read (stays inside the device)."""
        self.flash_vector_reads += 1
        self.flash_bus_bytes += ev_size

    def record_page_reads(self, count: int, page_size: int, to_host: bool = True) -> None:
        """Batch form of :meth:`record_page_read` (integer-exact)."""
        self.flash_page_reads += count
        self.flash_bus_bytes += count * page_size
        if to_host:
            self.host_read_bytes += count * page_size

    def record_vector_reads(self, count: int, total_bytes: int) -> None:
        """Batch form of :meth:`record_vector_read` (integer-exact)."""
        self.flash_vector_reads += count
        self.flash_bus_bytes += total_bytes

    def record_host_transfer(self, read_bytes: int = 0, write_bytes: int = 0) -> None:
        self.host_read_bytes += read_bytes
        self.host_write_bytes += write_bytes

    def record_useful(self, nbytes: int) -> None:
        self.useful_bytes += nbytes

    def record_vcache(
        self, hits: int, misses: int, evictions: int = 0, fills: int = 0
    ) -> None:
        """One batch's controller-DRAM vector-cache probe outcome."""
        self.vcache_hits += hits
        self.vcache_misses += misses
        self.vcache_evictions += evictions
        self.vcache_fills += fills

    # ------------------------------------------------------------------
    # Snapshots (derived metrics live on the shared IOView mixin)
    # ------------------------------------------------------------------
    def snapshot(self) -> IOSnapshot:
        """Frozen copy of the counters as they stand now."""
        return IOSnapshot(
            **{name: getattr(self, name) for name in COUNTER_FIELDS}
        )

    def diff(self, earlier: IOView) -> IOSnapshot:
        """Counters accumulated since ``earlier`` (a snapshot taken
        from this bundle), as a frozen measurement window."""
        return IOSnapshot(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in COUNTER_FIELDS
            }
        )

    def reset(self) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)
