"""Flash memory controllers.

A conventional **FMC** manages one flash channel and serves page-sized
reads.  The paper's **EV-FMC** extends it with vector-grained reads:
"instead of a whole page, only one vector data from the offset will be
transferred, and the size is configured to ``EVsize``" (Section
IV-B2).

Both are thin orchestration layers over :class:`repro.ssd.flash.
FlashArray`, which owns the die/bus contention model; the FMC's job
here is request bookkeeping (the Path Buffer marking used by the
DEMUX to route returned data) and providing an issue API that the
controller and the Embedding Lookup Engine share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.sim import Simulator
from repro.ssd.flash import FlashArray


@dataclass
class ReadRequest:
    """One outstanding flash read tracked in the Path Buffer.

    ``kind`` distinguishes the two return paths the DEMUX must route
    (Section IV-B3): ``"block"`` responses go to the NVMe controller,
    ``"vector"`` responses go to the EV Sum unit.
    """

    kind: str
    physical_page: int
    col: int = 0
    size: int = 0
    tag: Optional[object] = None
    issued_at: float = 0.0
    completed_at: float = 0.0
    data: bytes = b""

    @property
    def latency_ns(self) -> float:
        return self.completed_at - self.issued_at


class FlashMemoryController:
    """Per-device FMC pool: issues requests to the flash array.

    The flash array already routes each physical page to its channel
    and die, so one controller object can front all channels; per-
    channel queueing emerges from the die/bus resources.
    """

    def __init__(self, sim: Simulator, flash: FlashArray) -> None:
        self.sim = sim
        self.flash = flash
        self.completed: List[ReadRequest] = []
        self.keep_history = False

    def _finish(self, request: ReadRequest, data: bytes) -> ReadRequest:
        request.completed_at = self.sim.now
        request.data = data
        if self.keep_history:
            self.completed.append(request)
        return request

    def read_page(self, physical_page: int, tag: object = None, to_host: bool = True) -> Generator:
        """Process: full-page read; returns the completed request."""
        request = ReadRequest(
            kind="block",
            physical_page=physical_page,
            size=self.flash.geometry.page_size,
            tag=tag,
            issued_at=self.sim.now,
        )
        data = yield from self.flash.read_page_proc(physical_page, to_host=to_host)
        return self._finish(request, data)


class EVFlashMemoryController(FlashMemoryController):
    """EV-FMC: adds vector-grained reads on the same channels."""

    def read_vector(
        self, physical_page: int, col: int, size: int, tag: object = None
    ) -> Generator:
        """Process: read ``size`` bytes at ``col`` of a physical page."""
        request = ReadRequest(
            kind="vector",
            physical_page=physical_page,
            col=col,
            size=size,
            tag=tag,
            issued_at=self.sim.now,
        )
        data = yield from self.flash.read_vector_proc(physical_page, col, size)
        return self._finish(request, data)
