"""Flash Translation Layer.

Translates logical block addresses (LBAs, in units of logical pages) to
physical page indices.  The paper's prototype "applies the linear
mapping function in the FTL design, and each page's data are scattered
around the four DDR4 chips for higher throughput" — that scattering is
exactly what :class:`repro.ssd.geometry.SSDGeometry`'s channel-major
page numbering provides, so :class:`LinearMapping` is the identity on
page numbers.  :class:`PageMapping` is a conventional page-mapped FTL
kept for completeness (block I/O workloads with out-of-place writes).

The FTL is shared between the conventional block I/O path and the
embedding-vector path; the controller arbitrates between them with a
round-robin MUX (Section IV-B2).  Each translation costs a small fixed
number of cycles.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ssd.geometry import SSDGeometry


class LinearMapping:
    """Identity LBA->PBA mapping (the prototype's choice)."""

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry

    def translate(self, lba: int) -> int:
        if not 0 <= lba < self.geometry.total_pages:
            raise ValueError(f"LBA {lba} out of device range")
        return lba

    def translate_array(self, lbas) -> np.ndarray:
        """Batched :meth:`translate` (identity after a bounds check)."""
        lbas = np.asarray(lbas, dtype=np.int64)
        if lbas.size:
            bounds = (lbas < 0) | (lbas >= self.geometry.total_pages)
            if bounds.any():
                raise ValueError(f"LBA {int(lbas[bounds][0])} out of device range")
        return lbas.copy()

    def map_write(self, lba: int) -> int:
        return self.translate(lba)


class PageMapping:
    """Page-mapped FTL with an append-only allocation pointer.

    Unmapped reads raise ``KeyError`` — reading never-written logical
    space is a host bug the simulator should surface, not hide.
    """

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry
        self._table: Dict[int, int] = {}
        self._next_free = 0

    def translate(self, lba: int) -> int:
        try:
            return self._table[lba]
        except KeyError:
            raise KeyError(f"LBA {lba} has never been written") from None

    def map_write(self, lba: int) -> int:
        """Allocate (or reuse, in-place for simplicity) a physical page."""
        if lba in self._table:
            return self._table[lba]
        if self._next_free >= self.geometry.total_pages:
            raise RuntimeError("flash device is full")
        physical = self._next_free
        self._next_free += 1
        self._table[lba] = physical
        return physical

    @property
    def mapped_pages(self) -> int:
        return len(self._table)


class FlashTranslationLayer:
    """FTL facade: a mapping policy plus a translation cost.

    ``lookup_cycles`` models the pipeline stage the translation takes in
    the controller; the EV path pre-scans table metadata so its
    translation is cheap (Fig. 6 step 1).
    """

    def __init__(
        self,
        geometry: SSDGeometry,
        mapping: Optional[object] = None,
        lookup_cycles: int = 8,
    ) -> None:
        self.geometry = geometry
        self.mapping = mapping if mapping is not None else LinearMapping(geometry)
        self.lookup_cycles = lookup_cycles
        #: Sanitizer-mode L2P checks; attached by the owning controller.
        self.sanitizer = None

    def attach_sanitizer(self, sanitizer) -> None:
        """Enable L2P injectivity/bounds checks on every translation."""
        self.sanitizer = sanitizer

    def _check(self, lba: int, physical: int) -> int:
        if self.sanitizer is not None:
            self.sanitizer.on_translate(
                lba, physical, self.geometry.total_pages,
                component=type(self.mapping).__name__,
            )
        return physical

    def translate(self, lba: int) -> int:
        """LBA (logical page number) -> physical page index."""
        return self._check(lba, self.mapping.translate(lba))

    def translate_array(self, lbas) -> np.ndarray:
        """Batched translation for the vectorized lookup fast path.

        Uses the mapping's own array method when it has one (the
        linear mapping translates in O(1) vectorized work); otherwise
        falls back to per-LBA scalar translation, so page-mapped FTLs
        keep their exact semantics (including ``KeyError`` on
        never-written logical space).
        """
        lbas = np.asarray(lbas, dtype=np.int64)
        mapping_batched = getattr(self.mapping, "translate_array", None)
        if mapping_batched is not None:
            physical = mapping_batched(lbas)
        else:
            physical = np.fromiter(
                (self.mapping.translate(int(lba)) for lba in lbas),
                dtype=np.int64,
                count=len(lbas),
            )
        if self.sanitizer is not None:
            self.sanitizer.on_translate_array(
                lbas, physical, self.geometry.total_pages,
                component=type(self.mapping).__name__,
            )
        return physical

    def map_write(self, lba: int) -> int:
        return self._check(lba, self.mapping.map_write(lba))

    def translate_byte_address(self, byte_offset: int) -> tuple:
        """Byte offset in logical space -> ``(physical_page, col)``."""
        lba, col = self.geometry.byte_to_page(byte_offset)
        return self.translate(lba), col
