"""Tests for the MLP Acceleration Engine runtime and resource model."""

import numpy as np
import pytest

from repro.core.lookup_engine import flash_read_cycles
from repro.core.mlp_engine import (
    MLPAccelerationEngine,
    dlrm_forward_decomposed,
    forward_from_pooled,
)
from repro.embedding.pooling import sls_all_tables
from repro.fpga.decompose import (
    PLACEMENT_BRAM,
    PLACEMENT_DRAM,
    LayerAssignment,
    decompose_model,
)
from repro.fpga.kernel import KernelSize
from repro.fpga.resources import (
    ResourceVector,
    engine_resources,
    layer_resources,
    mac_units,
    naive_gemm_resources,
    weight_bram_tiles,
)
from repro.fpga.search import kernel_search
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def make_engine(key="rmc1", rows=64):
    config = get_config(key)
    model = build_model(config, rows_per_table=rows, seed=2)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    result = kernel_search(dec, flash)
    return config, model, MLPAccelerationEngine(model, result)


class TestEngineRuntime:
    def test_forward_batch_matches_model(self):
        config, model, engine = make_engine()
        rng = np.random.default_rng(0)
        sparse = [[1, 2]] * config.num_tables
        pooled = np.stack([sls_all_tables(model.tables, sparse)])
        dense = rng.standard_normal((1, config.dense_dim)).astype(np.float32)
        outputs = engine.forward_batch(dense, pooled)
        np.testing.assert_allclose(
            outputs, model.forward(dense, [sparse]), rtol=1e-5, atol=1e-6
        )

    def test_stage_times_scale_with_batch(self):
        config, model, engine = make_engine()
        t1 = engine.stage_times_for(1)
        t16 = engine.stage_times_for(16)
        assert t16.temb > t1.temb  # flash grows linearly
        assert t16.tbot >= t1.tbot  # MLP grows in II steps

    def test_interval_and_latency_ns(self):
        config, model, engine = make_engine()
        assert engine.interval_ns(1) > 0
        assert engine.latency_ns(1) >= engine.interval_ns(1)

    def test_supported_nbatch_exposed(self):
        config, model, engine = make_engine("rmc3", rows=32)
        assert engine.supported_nbatch == 4

    def test_forward_from_pooled_rejects_bad_width(self):
        config, model, engine = make_engine()
        with pytest.raises(ValueError):
            forward_from_pooled(model, np.zeros(config.dense_dim), np.zeros(3))

    def test_forward_from_pooled_unknown_model(self):
        class Strange:
            tables = build_model(get_config("rmc1"), rows_per_table=8).tables

        with pytest.raises(TypeError):
            forward_from_pooled(Strange(), None, np.zeros(8 * 32, dtype=np.float32))

    def test_decomposed_forward_handles_relu_interaction(self):
        # The decomposition must agree even when L0's pre-activation is
        # negative (ReLU clamps identically on both paths).
        config, model, _ = make_engine()
        dense = -np.ones(config.dense_dim, dtype=np.float32)
        sparse = [[0]] * config.num_tables
        pooled = sls_all_tables(model.tables, sparse)
        np.testing.assert_allclose(
            dlrm_forward_decomposed(model, dense, pooled),
            model.forward_one(dense, sparse),
            rtol=1e-5, atol=1e-6,
        )


class TestResourceModel:
    def _layer(self, kernel, placement=PLACEMENT_BRAM, rows=64, cols=64):
        return LayerAssignment("L", rows, cols, placement, kernel)

    def test_mac_units_ii_reuse(self):
        assert mac_units(self._layer(KernelSize(4, 2))) == 1
        assert mac_units(self._layer(KernelSize(16, 16))) == 32

    def test_mac_units_requires_kernel(self):
        with pytest.raises(ValueError):
            mac_units(LayerAssignment("L", 4, 4))

    def test_weight_bram_tiles(self):
        assert weight_bram_tiles(4608) == 1
        assert weight_bram_tiles(4609) == 2

    def test_bram_layer_banks_at_least_units(self):
        # A tiny-weight layer with a big kernel still needs one bank
        # per MAC unit.
        usage = layer_resources(self._layer(KernelSize(16, 16), rows=8, cols=8))
        assert usage.bram >= 32

    def test_dram_layer_has_no_weight_bram(self):
        bram_layer = layer_resources(
            self._layer(KernelSize(16, 8), rows=2560, cols=1024)
        )
        dram_layer = layer_resources(
            self._layer(KernelSize(16, 8), PLACEMENT_DRAM, rows=2560, cols=1024)
        )
        assert dram_layer.bram < bram_layer.bram / 10
        assert dram_layer.lut > bram_layer.lut  # fetch/DMA logic

    def test_engine_resources_sum_layers(self):
        config, model, engine = make_engine()
        total = engine_resources(engine.search.model)
        parts = ResourceVector()
        for layer in engine.search.model.all_layers():
            parts = parts + layer_resources(layer)
        assert total.as_dict() == parts.as_dict()

    def test_resource_vector_dominates(self):
        big = ResourceVector(10, 10, 10, 10)
        small = ResourceVector(1, 1, 1, 1)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_naive_gemm_grows_with_input_width(self):
        narrow = naive_gemm_resources([(128, 64)])
        wide = naive_gemm_resources([(2560, 64)])
        assert wide.lut > narrow.lut
        assert wide.dsp == narrow.dsp  # fixed array

    def test_naive_gemm_streams_when_weights_overflow(self):
        small = naive_gemm_resources([(128, 64)])
        huge = naive_gemm_resources([(2560, 1024), (1024, 1024)])
        # Streaming designs cap their BRAM.
        assert huge.bram < weight_bram_tiles(2560 * 1024 * 4 + 1024 * 1024 * 4)

    def test_naive_gemm_empty_rejected(self):
        with pytest.raises(ValueError):
            naive_gemm_resources([])
