"""Differential span-tree tests: fast path vs DES traces, exactly.

PR 2's equivalence contract says the vectorized lookup fast path is
undetectable apart from wall-clock time.  Observability extends that
contract: with tracing on, both paths must emit *identical* span trees
— same names, same tracks, same simulated timestamps — because every
span endpoint is derived only from quantities the contract already
guarantees bitwise-equal (batch start, elapsed, the EV-Sum tail, and
the FTL/channel server states).  ``Tracer.as_tuples()`` is the
exact-equality currency.
"""

import numpy as np
import pytest

from repro.obs.tracer import Tracer
from tests.test_fastpath_equivalence import (
    GEOMETRY_NAMES,
    build_engine,
    make_batch,
)

LOOKUP_SPAN_NAMES = ("lookup_batch", "translate", "flash_read", "ev_sum")


def traced_engine(geometry_name, pooling="sum"):
    engine = build_engine(geometry_name, pooling)
    # build_engine constructs the controller without a tracer kwarg;
    # emission reads controller.tracer dynamically, so attach one here.
    engine.controller.tracer = Tracer()
    return engine


def run_traced_pair(batches, geometry_name, pooling="sum"):
    des_engine = traced_engine(geometry_name, pooling)
    fast_engine = traced_engine(geometry_name, pooling)
    for batch in batches:
        des = des_engine.lookup_batch(batch, fast=False)
        fast = fast_engine.lookup_batch(batch, fast=True)
        assert des.path == "des" and fast.path == "fast"
    return des_engine.controller.tracer, fast_engine.controller.tracer


@pytest.mark.parametrize("geometry_name", GEOMETRY_NAMES)
def test_span_trees_identical_smoke(geometry_name):
    rng = np.random.default_rng(11)
    batches = [make_batch(rng, samples=4, max_len=6, dist="uniform")]
    des_tracer, fast_tracer = run_traced_pair(batches, geometry_name)
    assert len(des_tracer) > 0
    assert fast_tracer.as_tuples() == des_tracer.as_tuples()


@pytest.mark.parametrize("dist", ["uniform", "skewed"])
def test_span_trees_identical_across_consecutive_batches(dist):
    # Server free_at carries between batches; spans of batch N+1 depend
    # on batch N leaving identical state on both paths.
    rng = np.random.default_rng(23)
    batches = [make_batch(rng, samples=3, max_len=5, dist=dist) for _ in range(3)]
    des_tracer, fast_tracer = run_traced_pair(batches, "square")
    assert fast_tracer.as_tuples() == des_tracer.as_tuples()


def test_expected_lookup_spans_present():
    rng = np.random.default_rng(7)
    des_tracer, _ = run_traced_pair(
        [make_batch(rng, samples=2, max_len=4, dist="uniform")], "square"
    )
    names = {span.name for span in des_tracer.spans}
    for required in LOOKUP_SPAN_NAMES:
        assert required in names
    assert "ftl" in names


def test_only_path_arg_differs():
    rng = np.random.default_rng(3)
    batches = [make_batch(rng, samples=2, max_len=4, dist="uniform")]
    des_tracer, fast_tracer = run_traced_pair(batches, "wide")
    assert len(des_tracer) == len(fast_tracer)
    for des_span, fast_span in zip(des_tracer.spans, fast_tracer.spans):
        assert des_span.key() == fast_span.key()
        assert des_span.cat == fast_span.cat
        des_args = dict(des_span.args or {})
        fast_args = dict(fast_span.args or {})
        assert des_args.pop("path", None) in (None, "des")
        assert fast_args.pop("path", None) in (None, "fast")
        assert des_args == fast_args


def test_span_nesting_is_exportable(tmp_path):
    # The emitted tree must satisfy the chrome exporter's proper-nesting
    # check on every track — partial overlap would raise here.
    rng = np.random.default_rng(5)
    des_tracer, fast_tracer = run_traced_pair(
        [make_batch(rng, samples=3, max_len=5, dist="skewed") for _ in range(2)],
        "deep",
    )
    for label, tracer in (("des", des_tracer), ("fast", fast_tracer)):
        path = tracer.export_chrome(str(tmp_path / f"{label}.json"))
        events = tracer.chrome_events()
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends > 0, label
        assert path


def test_empty_batch_emits_identical_spans():
    # The fast path falls back to DES error behaviour for empty
    # batches, but an all-empty-sample batch traces on both paths.
    empty = [[[] for _ in range(3)]]
    des_tracer, fast_tracer = run_traced_pair([empty], "single")
    assert fast_tracer.as_tuples() == des_tracer.as_tuples()
