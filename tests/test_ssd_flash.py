"""Tests for the flash array data plane and timing behaviour."""

import pytest

from repro.sim import Simulator
from repro.ssd.flash import FlashArray
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def small_geometry(channels=4, dies=4):
    return SSDGeometry(
        channels=channels,
        dies_per_channel=dies,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
        page_size=4096,
    )


@pytest.fixture
def flash():
    sim = Simulator()
    return FlashArray(sim, small_geometry())


class TestDataPlane:
    def test_write_then_peek(self, flash):
        flash.write_page(3, b"hello")
        assert flash.peek(3, 0, 5) == b"hello"

    def test_unwritten_page_reads_zeros(self, flash):
        assert flash.peek(7, 0, 8) == bytes(8)

    def test_write_at_offset(self, flash):
        flash.write_page(0, b"abc", offset=100)
        assert flash.peek(0, 100, 3) == b"abc"
        assert flash.peek(0, 99, 1) == b"\x00"

    def test_write_across_boundary_rejected(self, flash):
        with pytest.raises(ValueError):
            flash.write_page(0, b"x" * 10, offset=4090)

    def test_peek_across_boundary_rejected(self, flash):
        with pytest.raises(ValueError):
            flash.peek(0, 4090, 10)

    def test_sparse_backing(self, flash):
        flash.write_page(0, b"a")
        flash.write_page(5, b"b")
        assert flash.written_pages == 2

    def test_mismatched_page_size_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FlashArray(
                sim, small_geometry(), SSDTimingModel(page_size=8192)
            )


class TestReadTiming:
    def test_single_page_read_latency(self, flash):
        sim = flash.sim
        proc = sim.process(flash.read_page_proc(0))
        sim.run()
        expected = (
            flash.timing.request_overhead_ns
            + flash.timing.flush_ns
            + flash.timing.transfer_ns
        )
        assert sim.now == pytest.approx(expected)
        assert proc.value == flash.peek(0)

    def test_single_vector_read_latency(self, flash):
        sim = flash.sim
        sim.process(flash.read_vector_proc(0, col=128, size=128))
        sim.run()
        expected = flash.timing.request_overhead_ns + flash.timing.vector_read_ns(128)
        assert sim.now == pytest.approx(expected)

    def test_vector_read_returns_correct_slice(self, flash):
        flash.write_page(2, bytes(range(200)))
        sim = flash.sim
        proc = sim.process(flash.read_vector_proc(2, col=50, size=20))
        sim.run()
        assert proc.value == bytes(range(50, 70))

    def test_reads_on_different_channels_overlap(self):
        sim = Simulator()
        flash = FlashArray(sim, small_geometry(channels=4))
        # Pages 0..3 land on channels 0..3.
        elapsed = flash.run_reads([0, 1, 2, 3], vector=False)
        single = (
            flash.timing.request_overhead_ns
            + flash.timing.flush_ns
            + flash.timing.transfer_ns
        )
        assert elapsed == pytest.approx(single)

    def test_reads_on_same_die_serialize(self):
        sim = Simulator()
        geo = small_geometry(channels=1, dies=1)
        flash = FlashArray(sim, geo)
        elapsed = flash.run_reads([0, 1], vector=False)
        single = flash.timing.flush_ns + flash.timing.transfer_ns
        # Two reads on the only die: flush+transfer twice, overheads overlap.
        assert elapsed >= 2 * single

    def test_flushes_overlap_across_dies_sharing_bus(self):
        sim = Simulator()
        geo = small_geometry(channels=1, dies=4)
        flash = FlashArray(sim, geo)
        # Pages 0..3 on channel 0 land on dies 0..3 (channel-major layout).
        elapsed = flash.run_reads([0, 1, 2, 3], vector=False)
        serial = 4 * (flash.timing.flush_ns + flash.timing.transfer_ns)
        # Overlapped flushes should beat full serialization clearly.
        assert elapsed < 0.6 * serial

    def test_vector_reads_much_faster_in_bulk_than_page_reads(self):
        geo = small_geometry(channels=4, dies=4)
        requests = list(range(64))

        sim_page = Simulator()
        flash_page = FlashArray(sim_page, geo)
        t_page = flash_page.run_reads(requests, vector=False)

        sim_vec = Simulator()
        flash_vec = FlashArray(sim_vec, geo)
        t_vec = flash_vec.run_reads([(p, 0, 128) for p in requests], vector=True)

        # Section IV-B2: vector-grained reads increase bulk throughput.
        assert t_vec < t_page

    def test_stats_accounting(self, flash):
        sim = flash.sim
        sim.process(flash.read_page_proc(0))
        sim.process(flash.read_vector_proc(1, 0, 128))
        sim.run()
        assert flash.stats.flash_page_reads == 1
        assert flash.stats.flash_vector_reads == 1
        assert flash.stats.flash_bus_bytes == 4096 + 128
        assert flash.stats.host_read_bytes == 4096  # vector read stays inside

    def test_internal_page_read_does_not_cross_host(self, flash):
        sim = flash.sim
        sim.process(flash.read_page_proc(0, to_host=False))
        sim.run()
        assert flash.stats.host_read_bytes == 0
        assert flash.stats.flash_page_reads == 1
