"""Tests for open-loop cluster serving and SLA autoscaling."""

import json

import pytest

from repro.core.pipeline_sim import PipelineSimulator
from repro.fpga.compose import StageTimes
from repro.host.autoscale import Autoscaler, EpochSignal
from repro.host.cluster_serving import (
    BALANCER_JSQ,
    BALANCER_LATENCY,
    BALANCER_ROUND_ROBIN,
    ClusterServingSimulator,
    _ReplicaModel,
    make_balancer,
)
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.workloads.arrivals import flash_crowd_trace, poisson_trace

EMB, BOT, TOP = 200_000, 50_000, 30_000
UNLOADED_NS = (EMB + TOP) * 5.0


def simple_times(temb=EMB, tbot=BOT, ttop=TOP, nbatch=1):
    return StageTimes(
        temb=temb, tbot=tbot, ttop=ttop, nbatch=nbatch, flash_cycles=temb
    )


def cluster(replicas=2, balancer=BALANCER_ROUND_ROBIN, **kwargs):
    return ClusterServingSimulator(
        simple_times(), replicas=replicas, balancer=balancer, **kwargs
    )


class TestReplicaModel:
    def test_mirror_is_exact_against_pipeline(self):
        """The analytic dispatcher predicts the DES's completion times
        bitwise, for an irregular sorted arrival pattern."""
        trace = poisson_trace(1500.0, 60, seed=13)
        times = simple_times()
        cycle = 5.0
        model = _ReplicaModel(times.temb * cycle, times.tbot * cycle, times.ttop * cycle)
        predicted = [model.commit(a) for a in trace.times_ns]
        pipeline = PipelineSimulator(
            emb_ns=times.temb * cycle,
            bot_ns=times.tbot * cycle,
            top_ns=times.ttop * cycle,
        )
        for fast in (False, True):
            result = pipeline.run(
                trace.count, arrival_times_ns=list(trace.times_ns), fast=fast
            )
            simulated = [r.top_done_ns for r in result.records]
            assert simulated == predicted

    def test_backlog_counts_in_flight(self):
        model = _ReplicaModel(100.0, 0.0, 50.0)
        done = model.commit(0.0)  # completes at 150
        assert model.backlog(10.0) == 1
        assert model.backlog(done) == 0


class TestBalancers:
    def test_round_robin_cycles(self):
        sim = cluster(replicas=3)
        trace = poisson_trace(1000.0, 9, seed=1)
        point = sim.serve_trace(trace)
        assert point.per_replica_batches == (3, 3, 3)

    def test_jsq_prefers_idle_replica(self):
        balancer = make_balancer(BALANCER_JSQ)
        busy = _ReplicaModel(1000.0, 0.0, 0.0)
        idle = _ReplicaModel(1000.0, 0.0, 0.0)
        busy.commit(0.0)
        assert balancer.pick(10.0, [busy, idle], [0, 1]) == 1
        # Ties resolve to the lowest replica id.
        assert balancer.pick(5000.0, [busy, idle], [0, 1]) == 0

    def test_latency_weighted_prefers_fastest_completion(self):
        balancer = make_balancer(BALANCER_LATENCY)
        busy = _ReplicaModel(1000.0, 0.0, 0.0)
        idle = _ReplicaModel(1000.0, 0.0, 0.0)
        for _ in range(3):
            busy.commit(0.0)
        assert balancer.pick(10.0, [busy, idle], [0, 1]) == 1

    def test_jsq_beats_round_robin_under_skew(self):
        """With queue-aware dispatch the tail under bursty load is no
        worse than blind round-robin."""
        trace = flash_crowd_trace(1200.0, 1e8, 3e7, 3e7, burst_factor=3.0, seed=5)
        rr = cluster(replicas=2, balancer=BALANCER_ROUND_ROBIN).serve_trace(trace)
        jsq = cluster(replicas=2, balancer=BALANCER_JSQ).serve_trace(trace)
        assert jsq.p99_ns <= rr.p99_ns * 1.001

    def test_unknown_balancer_rejected(self):
        with pytest.raises(ValueError):
            make_balancer("random")
        with pytest.raises(ValueError):
            cluster(balancer="random")


class TestClusterServing:
    def test_single_replica_matches_pipeline(self):
        trace = poisson_trace(800.0, 40, seed=2)
        sim = cluster(replicas=1)
        point = sim.serve_trace(trace)
        pipeline = PipelineSimulator(
            emb_ns=EMB * 5.0, bot_ns=BOT * 5.0, top_ns=TOP * 5.0
        )
        result = pipeline.run(
            trace.count, arrival_times_ns=list(trace.times_ns)
        )
        assert list(point.latencies_ns) == [
            r.top_done_ns - r.arrival_ns for r in result.records
        ]

    def test_more_replicas_cut_tail_latency(self):
        trace = poisson_trace(1800.0, 150, seed=3)
        one = cluster(replicas=1).serve_trace(trace)
        three = cluster(replicas=3).serve_trace(trace)
        assert three.p99_ns < one.p99_ns

    def test_des_and_fast_paths_bitwise_equal(self):
        trace = flash_crowd_trace(900.0, 1e8, 3e7, 2e7, burst_factor=3.0, seed=7)
        points = {}
        docs = {}
        for fast in (False, True):
            scaler = Autoscaler(
                sla_ns=3 * UNLOADED_NS, window_ns=2e6, max_replicas=6,
                epoch_windows=2,
            )
            metrics = MetricsRegistry(window_ns=2e6)
            sim = ClusterServingSimulator(
                simple_times(), replicas=1, balancer=BALANCER_JSQ,
                autoscaler=scaler, metrics=metrics,
            )
            point = sim.serve_trace(trace, fast=fast)
            points[fast] = point
            docs[fast] = json.dumps(
                sim.timeseries_document(), sort_keys=True
            )
        assert points[False].path == "des"
        assert points[True].path == "fast"
        assert (  # lint: ok[R2]
            points[False].latencies_ns == points[True].latencies_ns
        )
        assert points[False].scale_events == points[True].scale_events
        assert docs[False] == docs[True]

    def test_batches_fold_queries(self):
        trace = poisson_trace(1000.0, 10, seed=4)
        sim = ClusterServingSimulator(
            simple_times(nbatch=4), nbatch=4, replicas=2
        )
        point = sim.serve_trace(trace)
        assert point.queries == 10
        assert point.batches == 3  # 4 + 4 + 2

    def test_cluster_metrics_emitted(self):
        metrics = MetricsRegistry(window_ns=5e6)
        trace = poisson_trace(1000.0, 20, seed=6)
        sim = cluster(replicas=2, metrics=metrics)
        sim.serve_trace(trace)
        assert metrics.counter(names.METRIC_CLUSTER_SCALE_EVENTS).value == 0
        series = metrics.series(names.METRIC_CLUSTER_REPLICAS)
        assert series is not None  # gauge sampled at t=0
        assert (
            metrics.counter(names.METRIC_SERVING_BATCHES).value
            == trace.count
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            cluster().serve_trace(())

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ValueError):
            cluster(replicas=0)

    def test_meets_sla_validates_quantile(self):
        point = cluster().serve_trace(poisson_trace(500.0, 5, seed=8))
        with pytest.raises(ValueError):
            point.meets_sla(1.0, quantile=101.0)

    def test_document_requires_a_run(self):
        with pytest.raises(ValueError):
            cluster(metrics=MetricsRegistry(window_ns=1e6)).timeseries_document()

    def test_bottleneck_signal(self):
        emb_led = cluster()
        assert emb_led._bottleneck() == ("emb", True)
        mlp_led = ClusterServingSimulator(
            simple_times(temb=10_000, tbot=90_000, ttop=20_000)
        )
        assert mlp_led._bottleneck() == ("bot", False)


class TestAutoscaler:
    def flash_run(self, balancer=BALANCER_JSQ, autoscale=True, max_replicas=8):
        trace = flash_crowd_trace(
            600.0, 2e8, 6e7, 8e7, burst_factor=4.0, seed=3
        )
        scaler = None
        if autoscale:
            scaler = Autoscaler(
                sla_ns=3 * UNLOADED_NS,
                window_ns=2e6,
                max_replicas=max_replicas,
                epoch_windows=2,
            )
        sim = ClusterServingSimulator(
            simple_times(), replicas=1, balancer=balancer, autoscaler=scaler
        )
        return sim.serve_trace(trace)

    def test_flash_crowd_triggers_scale_up(self):
        point = self.flash_run()
        assert point.scale_ups >= 1
        up = next(
            e for e in point.scale_events
            if e.action == names.EVENT_SCALE_UP
        )
        assert up.reason == "burn-rate"
        assert up.severity == names.ALERT_PAGE
        assert up.to_replicas == up.from_replicas + 1
        assert up.bottleneck_stage == "emb"
        assert up.invariant_holds

    def test_autoscaling_beats_fixed_fleet_tail(self):
        fixed = self.flash_run(autoscale=False)
        scaled = self.flash_run(autoscale=True)
        assert scaled.p99_ns < fixed.p99_ns

    def test_idle_tail_scales_back_down(self):
        point = self.flash_run()
        assert point.scale_downs >= 1
        down = next(
            e for e in point.scale_events
            if e.action == names.EVENT_SCALE_DOWN
        )
        assert down.reason == "idle-capacity"
        assert down.utilization < 0.5

    def test_never_exceeds_max_replicas(self):
        point = self.flash_run(max_replicas=2)
        assert max(e.to_replicas for e in point.scale_events) <= 2
        assert point.final_replicas >= 1

    def test_scaling_events_are_time_ordered(self):
        point = self.flash_run()
        stamps = [e.t_ns for e in point.scale_events]
        assert stamps == sorted(stamps)
        # Consecutive replica counts chain: each event starts from the
        # previous event's target.
        for before, after in zip(point.scale_events, point.scale_events[1:]):
            assert after.from_replicas == before.to_replicas

    def test_cooldown_blocks_immediate_scale_down(self):
        """A scale-down never lands in the epoch right after an action
        (cooldown_epochs=1 default)."""
        point = self.flash_run()
        epoch_ns = 2 * 2e6
        for before, after in zip(point.scale_events, point.scale_events[1:]):
            if after.action == names.EVENT_SCALE_DOWN:
                assert after.t_ns - before.t_ns > epoch_ns

    def test_evaluate_holds_without_alerts(self):
        scaler = Autoscaler(sla_ns=1e6, window_ns=1e6)
        signal = EpochSignal(
            t_ns=4e6, replicas=2, alerts=(), offered_qps=900.0,
            capacity_qps=1000.0, bottleneck_stage="emb",
            invariant_holds=True,
        )
        # High utilization, no alerts: hold.
        assert scaler.evaluate(signal) == 0
        assert scaler.events == []

    def test_report_dict_shape(self):
        scaler = Autoscaler(sla_ns=2e6, window_ns=1e6, max_replicas=4)
        report = scaler.report_dict()
        assert report["sla_ns"] == pytest.approx(2e6)
        assert report["max_replicas"] == 4
        assert report["events"] == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(sla_ns=1e6, min_replicas=0)
        with pytest.raises(ValueError):
            Autoscaler(sla_ns=1e6, min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            Autoscaler(sla_ns=1e6, scale_up_step=0)
        with pytest.raises(ValueError):
            Autoscaler(sla_ns=1e6, epoch_windows=0)
        with pytest.raises(ValueError):
            Autoscaler(sla_ns=1e6, scale_down_utilization=1.5)


class TestTimeseriesDocument:
    def test_cluster_section_contents(self):
        scaler = Autoscaler(
            sla_ns=3 * UNLOADED_NS, window_ns=2e6, max_replicas=4,
            epoch_windows=2,
        )
        metrics = MetricsRegistry(window_ns=2e6)
        sim = ClusterServingSimulator(
            simple_times(), replicas=1, balancer=BALANCER_JSQ,
            autoscaler=scaler, metrics=metrics,
        )
        trace = flash_crowd_trace(
            600.0, 2e8, 6e7, 8e7, burst_factor=4.0, seed=3
        )
        point = sim.serve_trace(trace)
        doc = sim.timeseries_document(slo=scaler.engine)
        assert doc["schema"] == "rmssd-timeseries/v1"
        section = doc["cluster"]
        assert section["balancer"] == BALANCER_JSQ
        assert section["initial_replicas"] == 1
        assert len(section["scaling_events"]) == len(point.scale_events)
        assert section["autoscaler"]["max_replicas"] == 4
        assert "path" not in section
        # The shared registry fed the serving series too.
        assert names.METRIC_SERVING_LATENCY in doc["series"]
