"""Tests for the open-loop arrival-trace generators."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    ArrivalTrace,
    batch_arrivals,
    diurnal_trace,
    flash_crowd_trace,
    merge_traces,
    poisson_trace,
)


def is_sorted(times):
    return all(a <= b for a, b in zip(times, times[1:]))


class TestPoisson:
    def test_deterministic_for_seed(self):
        a = poisson_trace(1000.0, 500, seed=7)
        b = poisson_trace(1000.0, 500, seed=7)
        assert a.times_ns == b.times_ns  # lint: ok[R2]

    def test_different_seeds_differ(self):
        a = poisson_trace(1000.0, 500, seed=7)
        b = poisson_trace(1000.0, 500, seed=8)
        assert a.times_ns != b.times_ns  # lint: ok[R2]

    def test_sorted_and_counted(self):
        trace = poisson_trace(2000.0, 300, seed=1)
        assert trace.count == 300
        assert is_sorted(trace.times_ns)

    def test_mean_rate_near_requested(self):
        trace = poisson_trace(5000.0, 4000, seed=2)
        assert trace.mean_qps == pytest.approx(5000.0, rel=0.1)

    def test_start_offset(self):
        trace = poisson_trace(1000.0, 10, seed=3, start_ns=5e6)
        assert trace.times_ns[0] > 5e6

    def test_first_gap_kept(self):
        """The first arrival is one exponential gap after t=0, never
        clamped to the origin."""
        trace = poisson_trace(1000.0, 10, seed=4)
        assert trace.times_ns[0] > 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_trace(0.0, 10)
        with pytest.raises(ValueError):
            poisson_trace(100.0, 0)


class TestDiurnal:
    def test_deterministic_for_seed(self):
        kwargs = dict(
            base_qps=2000.0, duration_ns=1e9, period_ns=2e8, seed=11
        )
        # Bitwise determinism for a fixed seed.
        assert (  # lint: ok[R2]
            diurnal_trace(**kwargs).times_ns
            == diurnal_trace(**kwargs).times_ns
        )

    def test_sorted_within_duration(self):
        trace = diurnal_trace(2000.0, 1e9, 2e8, seed=1)
        assert is_sorted(trace.times_ns)
        assert trace.times_ns[-1] < 1e9

    def test_mean_rate_near_base(self):
        # The sinusoid averages out over whole periods.
        trace = diurnal_trace(5000.0, 2e9, 2e8, amplitude=0.5, seed=2)
        assert trace.count / 2.0 == pytest.approx(5000.0, rel=0.1)

    def test_peak_half_busier_than_trough_half(self):
        # One full period: rate peaks in the first half-period
        # (sin > 0) and dips in the second.
        period_ns = 1e9
        trace = diurnal_trace(
            5000.0, period_ns, period_ns, amplitude=0.9, seed=3
        )
        t = np.asarray(trace.times_ns)
        first = int(np.sum(t < period_ns / 2))
        second = trace.count - first
        assert first > 1.5 * second

    def test_zero_amplitude_is_flat(self):
        trace = diurnal_trace(3000.0, 1e9, 1e8, amplitude=0.0, seed=4)
        assert trace.count / 1.0 == pytest.approx(3000.0, rel=0.15)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            diurnal_trace(0.0, 1e9, 1e8)
        with pytest.raises(ValueError):
            diurnal_trace(100.0, 0.0, 1e8)
        with pytest.raises(ValueError):
            diurnal_trace(100.0, 1e9, 0.0)
        with pytest.raises(ValueError):
            diurnal_trace(100.0, 1e9, 1e8, amplitude=1.0)


class TestFlashCrowd:
    def test_deterministic_for_seed(self):
        kwargs = dict(
            base_qps=1000.0,
            duration_ns=1e9,
            burst_start_ns=4e8,
            burst_duration_ns=2e8,
            burst_factor=5.0,
            seed=21,
        )
        assert (  # lint: ok[R2]
            flash_crowd_trace(**kwargs).times_ns
            == flash_crowd_trace(**kwargs).times_ns
        )

    def test_burst_window_denser(self):
        trace = flash_crowd_trace(
            2000.0, 1e9, 4e8, 2e8, burst_factor=5.0, seed=1
        )
        t = np.asarray(trace.times_ns)
        in_burst = int(np.sum((t >= 4e8) & (t < 6e8)))
        before = int(np.sum(t < 4e8))
        # Burst window is 0.2 s at 10 kqps (~2000 arrivals); the 0.4 s
        # before it runs at 2 kqps (~800).
        assert in_burst > 2 * before
        assert is_sorted(trace.times_ns)

    def test_factor_one_is_plain_poisson_rate(self):
        trace = flash_crowd_trace(2000.0, 1e9, 4e8, 2e8, burst_factor=1.0, seed=2)
        assert trace.mean_qps == pytest.approx(2000.0, rel=0.15)

    def test_burst_clipped_to_duration(self):
        trace = flash_crowd_trace(
            1000.0, 1e9, 9e8, 5e8, burst_factor=10.0, seed=3
        )
        assert trace.times_ns[-1] < 1e9

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            flash_crowd_trace(0.0, 1e9, 0.0, 1e8)
        with pytest.raises(ValueError):
            flash_crowd_trace(100.0, 0.0, 0.0, 1e8)
        with pytest.raises(ValueError):
            flash_crowd_trace(100.0, 1e9, 0.0, 1e8, burst_factor=0.5)
        with pytest.raises(ValueError):
            flash_crowd_trace(100.0, 1e9, -1.0, 1e8)


class TestCompose:
    def test_merge_sorts_superposition(self):
        a = poisson_trace(1000.0, 50, seed=1)
        b = poisson_trace(1000.0, 50, seed=2)
        merged = merge_traces(a, b)
        assert merged.count == 100
        assert is_sorted(merged.times_ns)
        assert sorted(a.times_ns + b.times_ns) == list(merged.times_ns)

    def test_merge_requires_a_trace(self):
        with pytest.raises(ValueError):
            merge_traces()

    def test_unsorted_trace_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(kind="poisson", times_ns=(2.0, 1.0))

    def test_batch_arrivals_groups_by_last_query(self):
        times = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0)
        batched = batch_arrivals(times, 3)
        # Batches of 3+3+1: each arrives with its last query.
        np.testing.assert_allclose(batched, [30.0, 60.0, 70.0])

    def test_batch_arrivals_exact_multiple(self):
        times = (1.0, 2.0, 3.0, 4.0)
        np.testing.assert_allclose(batch_arrivals(times, 2), [2.0, 4.0])

    def test_batch_arrivals_nbatch_one_is_identity(self):
        times = (1.0, 2.0, 3.0)
        np.testing.assert_allclose(batch_arrivals(times, 1), list(times))

    def test_batch_arrivals_empty_and_invalid(self):
        assert batch_arrivals((), 4).size == 0
        with pytest.raises(ValueError):
            batch_arrivals((1.0,), 0)

    def test_trace_batched_method(self):
        trace = poisson_trace(1000.0, 10, seed=5)
        np.testing.assert_allclose(
            trace.batched(4), batch_arrivals(trace.times_ns, 4)
        )

    def test_empty_trace_properties(self):
        trace = ArrivalTrace(kind="merged", times_ns=())
        assert trace.count == 0
        assert trace.duration_ns == 0
        assert trace.mean_qps == 0.0
