"""Metrics registry tests: histogram boundary math, registry, absorb."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS_NS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogramConstruction:
    def test_default_bounds_are_1_2_5_series(self):
        assert DEFAULT_BOUNDS_NS[0] == 100.0
        assert DEFAULT_BOUNDS_NS[-1] == 5e10
        assert list(DEFAULT_BOUNDS_NS) == sorted(DEFAULT_BOUNDS_NS)

    def test_empty_bounds_raise(self):
        with pytest.raises(ValueError, match="at least one"):
            LatencyHistogram("h", bounds=[])

    def test_non_increasing_bounds_raise(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            LatencyHistogram("h", bounds=[10, 10, 20])
        with pytest.raises(ValueError, match="strictly increasing"):
            LatencyHistogram("h", bounds=[20, 10])

    def test_non_positive_bounds_raise(self):
        with pytest.raises(ValueError, match="positive"):
            LatencyHistogram("h", bounds=[0, 10])


class TestHistogramObservation:
    def test_negative_observation_raises(self):
        with pytest.raises(ValueError, match="negative latency"):
            LatencyHistogram("h", bounds=[10]).observe(-1)

    def test_upper_inclusive_bucketing(self):
        # A value exactly on a bound lands in that bound's bucket
        # (Prometheus "le" semantics).
        hist = LatencyHistogram("h", bounds=[10, 20])
        for value in (10, 20, 21):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]

    def test_extremes_and_mean(self):
        hist = LatencyHistogram("h", bounds=[100])
        for value in (5, 15, 40):
            hist.observe(value)
        assert hist.min_ns == 5
        assert hist.max_ns == 40
        assert hist.mean_ns == pytest.approx(20.0)


class TestHistogramPercentiles:
    def test_empty_is_zero(self):
        hist = LatencyHistogram("h", bounds=[10])
        assert hist.percentile(50.0) == 0.0
        assert hist.mean_ns == 0

    def test_p0_is_min(self):
        hist = LatencyHistogram("h", bounds=[10, 20])
        hist.observe(7)
        hist.observe(12)
        assert hist.percentile(0.0) == 7

    def test_out_of_range_raises(self):
        hist = LatencyHistogram("h", bounds=[10])
        for bad in (-1.0, 100.5):
            with pytest.raises(ValueError, match=r"\[0, 100\]"):
                hist.percentile(bad)

    def test_interpolation_pin(self):
        # bounds [10,20,40], observations [10,20,20,40] -> counts
        # [1,2,1].  p50 targets rank 2, which falls in bucket (10,20]
        # holding ranks 2..3; interpolation gives 10 + 0.5*(20-10).
        hist = LatencyHistogram("h", bounds=[10, 20, 40])
        for value in (10, 20, 20, 40):
            hist.observe(value)
        assert hist.percentile(50.0) == 15.0

    def test_single_bucket_data_is_exact(self):
        # Edge tightening to min/max: all mass in one bucket means
        # lower==upper==value, so every quantile is exact.
        hist = LatencyHistogram("h", bounds=[100, 200])
        for _ in range(10):
            hist.observe(150)
        for q in (1.0, 50.0, 99.0, 100.0):
            assert hist.percentile(q) == 150.0

    def test_overflow_bucket_uses_observed_max(self):
        # Values above the last bound have no upper bound; the
        # observed max caps the interpolation instead.
        hist = LatencyHistogram("h", bounds=[10])
        hist.observe(1000)
        hist.observe(3000)
        assert hist.percentile(100.0) == 3000
        assert hist.percentile(50.0) <= 3000

    def test_summary_fields(self):
        hist = LatencyHistogram("h", bounds=[10, 20, 40])
        for value in (10, 20, 20, 40):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["p50_ns"] == 15.0
        assert summary["min_ns"] == 10
        assert summary["max_ns"] == 40
        assert set(summary) == {
            "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
            "min_ns", "max_ns",
        }

    def test_as_dict_sparse_buckets_and_overflow(self):
        hist = LatencyHistogram("h", bounds=[10, 20, 40])
        hist.observe(5)
        hist.observe(100)
        buckets = hist.as_dict()["buckets"]
        assert buckets == [
            {"le_ns": 10, "count": 1},
            {"le_ns": None, "count": 1},
        ]


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_as_dict_sections(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        registry.gauge("q").set(7.5)
        registry.histogram("lat", bounds=[10]).observe(4)
        registry.absorb("extra", {"k": 1})
        data = registry.as_dict()
        assert data["counters"] == {"n": 2}
        assert data["gauges"] == {"q": 7.5}
        assert data["histograms"]["lat"]["count"] == 1
        assert data["snapshots"]["extra"] == {"k": 1}

    def test_absorb_io_statistics(self):
        from repro.ssd.stats import IOStatistics

        stats = IOStatistics()
        stats.record_host_transfer(read_bytes=512)
        registry = MetricsRegistry()
        registry.absorb_io(stats)
        snapshot = registry.as_dict()["snapshots"]["io"]
        assert snapshot["host_read_bytes"] == 512
        assert "read_amplification" in snapshot

    def test_export_json_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.histogram("lat", bounds=[10, 20]).observe(15)
        path = registry.export_json(str(tmp_path / "metrics.json"))
        with open(path) as handle:
            document = json.load(handle)
        assert document == registry.as_dict()
