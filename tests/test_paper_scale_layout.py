"""Paper-scale addressing: 30 GB of embeddings on the 32 GB device.

The performance benches run scaled-down tables, but the *addressing*
path — extent allocation, Fig. 6 metadata, index-to-LBA translation —
must work at the paper's full capacity.  Virtual tables carry shape
without contents, so a 30 GB layout costs only its extent metadata.
"""

import pytest

from repro.embedding.layout import EmbeddingLayout
from repro.embedding.table import EmbeddingTable, EmbeddingTableSet
from repro.embedding.translator import EVTranslator
from repro.models import get_config
from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry


@pytest.fixture(scope="module")
def paper_layout():
    config = get_config("rmc1")
    rows = config.paper_rows_per_table()  # ~29 M rows per table
    tables = EmbeddingTableSet.uniform_virtual(
        config.num_tables, rows, config.dim
    )
    device = BlockDevice(SSDController(Simulator(), SSDGeometry()))
    layout = EmbeddingLayout(device, tables)
    layout.create_all(write_data=False)
    return config, tables, device, layout


class TestPaperScale:
    def test_thirty_gb_fits_the_device(self, paper_layout):
        config, tables, device, layout = paper_layout
        assert tables.total_bytes == pytest.approx(30 * (1 << 30), rel=0.01)
        allocated = sum(
            layout.layout_for(t).file_bytes for t in range(config.num_tables)
        )
        assert allocated <= device.controller.geometry.capacity_bytes

    def test_translation_at_full_scale(self, paper_layout):
        config, tables, device, layout = paper_layout
        translator = EVTranslator(page_size=4096)
        for table_id in range(config.num_tables):
            translator.register_table(
                table_id,
                layout.layout_for(table_id).extent_ranges,
                tables.ev_size,
                tables[table_id].rows,
            )
        rows = tables[0].rows
        capacity = device.controller.geometry.capacity_bytes
        for table_id in (0, config.num_tables - 1):
            for index in (0, 1, rows // 2, rows - 1):
                read = translator.translate(table_id, index)
                assert 0 <= read.device_offset < capacity
                assert read.device_offset == layout.device_offset(table_id, index)
                # Page-aligned packing: never straddles a flash page.
                col = read.device_offset % 4096
                assert col + read.size <= 4096

    def test_tables_do_not_overlap(self, paper_layout):
        config, tables, device, layout = paper_layout
        ranges = []
        for table_id in range(config.num_tables):
            handle = layout.layout_for(table_id).handle
            for extent in handle.extents:
                ranges.append((extent.start_lba, extent.end_lba))
        ranges.sort()
        for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
            assert end_a <= start_b

    def test_virtual_rows_refuse_materialization(self, paper_layout):
        config, tables, device, layout = paper_layout
        with pytest.raises(RuntimeError):
            tables[0].row(0)

    def test_virtual_flag(self):
        virtual = EmbeddingTable.virtual("v", 10, 8)
        real = EmbeddingTable("r", 10, 8)
        assert virtual.is_virtual and not real.is_virtual
        assert real.row(0).shape == (8,)
