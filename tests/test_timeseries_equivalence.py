"""Differential suite: DES and fast paths emit byte-identical
``rmssd-timeseries/v1`` exports.

The repo's core contract — bitwise-equal timestamps across the
event-driven reference and the closed-form/vectorized replays —
extends to the windowed telemetry layer: identical timestamps rolled
through identical window arithmetic must serialize to identical bytes.
Pinned here for the serving pipeline (Poisson and bursty arrivals,
with and without an SLO section) and for the full device (rmc1/rmc2,
with and without a vector cache).  Every export also passes the
``tools/check_trace.py --timeseries`` validator.
"""

import numpy as np
import pytest

from repro.core.device import RMSSD
from repro.core.pipeline_sim import PipelineSimulator
from repro.host.serving import ServingSimulator
from repro.models import build_model, get_config
from repro.obs import MetricsRegistry, SLOEngine, names
from repro.ssd.vcache import VectorCache
from tools.check_trace import check_timeseries

WINDOW_NS = 50_000.0


def poisson_arrivals(n, rate_per_ns, seed):
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_ns, size=n)
    arrivals = np.cumsum(gaps)
    return (arrivals - arrivals[0]).tolist()


def bursty_arrivals(n, burst=8, gap_ns=200_000.0):
    """Batches arrive in back-to-back bursts separated by idle gaps —
    the flash-crowd shape that exercises many-windows-per-burst."""
    return [
        (i // burst) * gap_ns + (i % burst) * 50.0
        for i in range(n)
    ]


def pipeline_export(arrivals, fast, tmp_path, tag, with_slo=False):
    metrics = MetricsRegistry(window_ns=WINDOW_NS)
    simulator = PipelineSimulator(
        emb_ns=9_000.0, bot_ns=4_000.0, top_ns=6_000.0, metrics=metrics
    )
    simulator.run(len(arrivals), arrival_times_ns=arrivals, fast=fast)
    slo = None
    if with_slo:
        slo = SLOEngine(WINDOW_NS)
        slo.objective(
            names.SLO_SERVING_TAIL,
            names.METRIC_SERVING_LATENCY,
            quantile=99.0,
            threshold_ns=25_000.0,
        )
    path = tmp_path / f"{tag}-{'fast' if fast else 'des'}.json"
    metrics.export_timeseries(str(path), slo=slo)
    return path


class TestServingTimeseries:
    def test_poisson_byte_identical(self, tmp_path):
        arrivals = poisson_arrivals(64, rate_per_ns=1 / 12_000.0, seed=3)
        fast = pipeline_export(arrivals, True, tmp_path, "poisson")
        des = pipeline_export(arrivals, False, tmp_path, "poisson")
        assert fast.read_bytes() == des.read_bytes()
        assert check_timeseries(str(fast)) == []

    def test_bursty_byte_identical_with_slo(self, tmp_path):
        arrivals = bursty_arrivals(48)
        fast = pipeline_export(arrivals, True, tmp_path, "bursty", with_slo=True)
        des = pipeline_export(arrivals, False, tmp_path, "bursty", with_slo=True)
        assert fast.read_bytes() == des.read_bytes()
        assert check_timeseries(str(fast)) == []

    def test_serving_simulator_byte_identical(self, tmp_path):
        """Full serving front end (Erlang-thinned Poisson batches)."""
        from repro.fpga.compose import StageTimes

        times = StageTimes(
            temb=2000, tbot=800, ttop=1200, nbatch=4, flash_cycles=1500
        )
        paths = {}
        for fast in (True, False):
            metrics = MetricsRegistry(window_ns=WINDOW_NS)
            serving = ServingSimulator(
                times, nbatch=4, seed=11, metrics=metrics,
                window_ns=WINDOW_NS,
            )
            serving.offered_load(
                serving.saturation_qps * 0.8, queries=80, fast=fast
            )
            path = tmp_path / f"serving-{fast}.json"
            metrics.export_timeseries(str(path))
            paths[fast] = path
        assert paths[True].read_bytes() == paths[False].read_bytes()
        assert check_timeseries(str(paths[True])) == []


def device_export(config_key, vcache_capacity, fastpath, tmp_path):
    config = get_config(config_key)
    model = build_model(config, rows_per_table=64, seed=7)
    metrics = MetricsRegistry(window_ns=1e6)
    vcache = VectorCache(vcache_capacity) if vcache_capacity else None
    device = RMSSD(
        model,
        config.lookups_per_table,
        fastpath=fastpath,
        metrics=metrics,
        vcache=vcache,
    )
    rng = np.random.default_rng(5)
    batches = []
    for _ in range(4):
        sparse = [
            [
                list(rng.integers(0, 64, size=config.lookups_per_table))
                for _ in range(config.num_tables)
            ]
            for _ in range(2)
        ]
        batches.append(sparse)
    dense = [
        rng.standard_normal((2, config.dense_dim)).astype(np.float32)
        for _ in range(4)
    ]
    device.run_workload(dense, batches)
    tag = f"{config_key}-{vcache_capacity}-{'fast' if fastpath else 'des'}"
    path = tmp_path / f"{tag}.json"
    metrics.export_timeseries(str(path))
    return path


class TestDeviceTimeseries:
    @pytest.mark.parametrize("config_key", ["rmc1", "rmc2"])
    @pytest.mark.parametrize("vcache_capacity", [0, 32])
    def test_device_byte_identical(self, config_key, vcache_capacity, tmp_path):
        fast = device_export(config_key, vcache_capacity, True, tmp_path)
        des = device_export(config_key, vcache_capacity, False, tmp_path)
        assert fast.read_bytes() == des.read_bytes()
        assert check_timeseries(str(fast)) == []
