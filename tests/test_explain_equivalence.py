"""Differential suite: DES and fast paths emit byte-identical
``rmssd-explain/v1`` exports.

The bitwise-equal-timestamps contract extends to the critical-path
attribution layer: identical :class:`BatchRecord` triples decomposed
by identical float arithmetic must serialize to identical bytes — for
the bare pipeline, the Poisson serving front end on both reference
models, and a load-balanced cluster under a flash crowd.  A
hypothesis sweep additionally pins the exact-conservation property on
both paths: every breakdown's ``latency_ns`` equals its fixed-order
component sum.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.pipeline_sim import PipelineSimulator
from repro.fpga.compose import StageTimes
from repro.host.cluster_serving import ClusterServingSimulator
from repro.models import build_model, get_config
from repro.obs import CritPathCollector, build_explain_document
from repro.obs.critpath import component_sum, export_explain_document
from repro.workloads.arrivals import flash_crowd_trace
from tools.check_trace import check_explain

TIMES = StageTimes(temb=2000, tbot=800, ttop=1200, nbatch=4, flash_cycles=1500)


def serving_times(config_key):
    from repro.core.lookup_engine import flash_read_cycles
    from repro.fpga.decompose import decompose_model
    from repro.fpga.search import kernel_search
    from repro.ssd.geometry import SSDGeometry
    from repro.ssd.timing import SSDTimingModel

    config = get_config(config_key)
    model = build_model(config, rows_per_table=64)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
        config.ev_size,
    )
    return kernel_search(dec, flash)


def pipeline_export(arrivals, fast, tmp_path, tag):
    collector = CritPathCollector()
    simulator = PipelineSimulator(
        emb_ns=9_000.0, bot_ns=4_000.0, top_ns=6_000.0, critpath=collector
    )
    simulator.run(len(arrivals), arrival_times_ns=arrivals, fast=fast)
    document = build_explain_document(collector.requests)
    path = tmp_path / f"{tag}-{'fast' if fast else 'des'}.json"
    export_explain_document(document, str(path))
    return path


class TestPipelineExplain:
    def test_poisson_byte_identical(self, tmp_path):
        rng = np.random.default_rng(3)
        arrivals = np.cumsum(rng.exponential(12_000.0, size=64)).tolist()
        fast = pipeline_export(arrivals, True, tmp_path, "poisson")
        des = pipeline_export(arrivals, False, tmp_path, "poisson")
        assert fast.read_bytes() == des.read_bytes()
        assert check_explain(str(fast)) == []

    def test_saturated_byte_identical(self, tmp_path):
        arrivals = [0.0] * 32  # host pre-send: everything queues
        fast = pipeline_export(arrivals, True, tmp_path, "saturated")
        des = pipeline_export(arrivals, False, tmp_path, "saturated")
        assert fast.read_bytes() == des.read_bytes()
        assert check_explain(str(fast)) == []


class TestServingExplain:
    @pytest.mark.parametrize("config_key", ["rmc1", "rmc2"])
    def test_serving_byte_identical(self, config_key, tmp_path):
        from repro.host.serving import ServingSimulator

        result = serving_times(config_key)
        paths = {}
        for fast in (True, False):
            collector = CritPathCollector()
            serving = ServingSimulator(
                result.times, nbatch=result.nbatch, seed=11,
                critpath=collector,
            )
            serving.offered_load(
                serving.saturation_qps * 0.8, queries=80, fast=fast
            )
            document = build_explain_document(
                collector.requests, meta={"model": config_key}
            )
            path = tmp_path / f"{config_key}-{fast}.json"
            export_explain_document(document, str(path))
            paths[fast] = path
        assert paths[True].read_bytes() == paths[False].read_bytes()
        assert check_explain(str(paths[True])) == []


class TestClusterExplain:
    def test_flash_crowd_byte_identical(self, tmp_path):
        result = serving_times("rmc1")
        replica_qps = result.times.throughput_qps(1e9 / 5.0)
        trace = flash_crowd_trace(
            0.8 * replica_qps * 2, 1e8,
            burst_start_ns=3e7, burst_duration_ns=4e7, burst_factor=3.0,
            seed=5,
        )
        paths = {}
        for fast in (True, False):
            collector = CritPathCollector()
            cluster = ClusterServingSimulator(
                result.times, nbatch=result.nbatch, replicas=2,
                balancer="jsq", critpath=collector,
            )
            cluster.serve_trace(trace, fast=fast)
            document = build_explain_document(collector.requests)
            path = tmp_path / f"cluster-{fast}.json"
            export_explain_document(document, str(path))
            paths[fast] = path
        assert paths[True].read_bytes() == paths[False].read_bytes()
        assert check_explain(str(paths[True])) == []
        # The cluster context must actually spread requests: both
        # replicas appear in the canonical records.
        import json

        records = json.load(open(paths[True]))["requests"]["records"]
        assert {r["replica"] for r in records} == {0, 1}


class TestConservationProperty:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        batches=st.integers(min_value=1, max_value=24),
        rate_ns=st.floats(min_value=2_000.0, max_value=40_000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_components_sum_exactly_on_both_paths(self, seed, batches, rate_ns):
        rng = np.random.default_rng(seed)
        arrivals = np.cumsum(rng.exponential(rate_ns, size=batches)).tolist()
        breakdowns = {}
        for fast in (True, False):
            collector = CritPathCollector()
            simulator = PipelineSimulator(
                emb_ns=9_000.0, bot_ns=4_000.0, top_ns=6_000.0,
                critpath=collector,
            )
            simulator.run(batches, arrival_times_ns=arrivals, fast=fast)
            for breakdown in collector.requests:
                assert breakdown["latency_ns"] == component_sum(breakdown)
            breakdowns[fast] = collector.requests
        assert breakdowns[True] == breakdowns[False]
