"""Unit tests for the cross-run regression explainer
(:mod:`repro.obs.explain`).

Synthetic documents of all three understood schemas exercise the
structured diff, the attribution math (component shares of the tail
delta, worst queue replica), the renderer, and the best-effort
``explain_failure`` entry point the benchmark gate calls.
"""

import pytest

from repro.obs.explain import (
    diff_documents,
    explain_failure,
    render_diff,
)


def explain_doc(p99_ns=10e6, queue_ns=6e6, emb_ns=3e6, top_ns=1e6,
                replica_shares=None, count=100):
    mean = {
        "dispatch_wait_ns": 0.0,
        "queue_ns": queue_ns,
        "emb_ns": emb_ns,
        "bot_ns": 0.0,
        "top_ns": top_ns,
    }
    mean["latency_ns"] = sum(mean.values())
    return {
        "schema": "rmssd-explain/v1",
        "meta": {},
        "components": list(mean)[:-1],
        "quantiles": [
            {
                "q": 99.0,
                "latency_ns": p99_ns,
                "tail": {
                    "count": 2,
                    "mean_ns": mean,
                    "blame": {},
                    "queue_share_by_replica": replica_shares
                    or {"0": 0.25, "1": 0.75},
                },
                "exemplars": [],
            }
        ],
        "totals": {},
        "requests": {"count": count},
    }


def profile_doc(bottleneck="emb", emb_util=0.9, top_util=0.3):
    return {
        "schema": "rmssd-profile/v1",
        "bottleneck": {"bottleneck_stage": bottleneck},
        "resources": {
            "emb": {"utilization": emb_util},
            "top": {"utilization": top_util},
        },
    }


def timeseries_doc(p99s=(1e6, 2e6), batches=10, final_replicas=None):
    document = {
        "schema": "rmssd-timeseries/v1",
        "series": {
            "serving.latency_ns": {
                "kind": "histogram",
                "windows": [
                    {"index": i, "start_ns": i * 1e6, "p99_ns": p99}
                    for i, p99 in enumerate(p99s)
                ],
            },
            "serving.batches": {"kind": "counter", "total": batches},
        },
    }
    if final_replicas is not None:
        document["cluster"] = {"final_replicas": final_replicas}
    return document


class TestDiffExplain:
    def test_attributes_delta_to_components(self):
        base = explain_doc()
        fresh = explain_doc(p99_ns=13e6, queue_ns=8.5e6, emb_ns=3.5e6)
        diff = diff_documents(base, fresh)
        assert diff["kind"] == "explain"
        (entry,) = diff["quantiles"]
        assert entry["delta_ns"] == pytest.approx(3e6)
        # queue moved 2.5 ms of the 3 ms tail delta: largest mover.
        assert entry["attribution"][0]["component"] == "queue_ns"
        assert entry["attribution"][0]["share"] == pytest.approx(2.5 / 3.0)
        assert entry["worst_replica"] == {
            "replica": "1", "queue_share": 0.75,
        }

    def test_count_delta(self):
        diff = diff_documents(explain_doc(count=100), explain_doc(count=90))
        assert diff["count_delta"] == -10

    def test_zero_tail_delta_gives_zero_shares(self):
        diff = diff_documents(explain_doc(), explain_doc())
        (entry,) = diff["quantiles"]
        assert all(a["share"] == 0.0 for a in entry["attribution"])

    def test_replica_tie_breaks_to_lowest_id(self):
        # max() keeps the first maximal element of the sorted ids.
        fresh = explain_doc(replica_shares={"1": 0.5, "0": 0.5})
        diff = diff_documents(explain_doc(), fresh)
        assert diff["quantiles"][0]["worst_replica"]["replica"] == "0"

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="cannot diff"):
            diff_documents(explain_doc(), profile_doc())

    def test_unknown_schema_raises(self):
        with pytest.raises(ValueError, match="cannot explain"):
            diff_documents({"schema": "nope/v0"}, {"schema": "nope/v0"})

    def test_render_lines(self):
        fresh = explain_doc(p99_ns=13.1e6, queue_ns=8.5e6, emb_ns=3.5e6)
        lines = render_diff(diff_documents(explain_doc(), fresh))
        assert len(lines) == 1
        assert lines[0].startswith("p99 +3.10 ms (10.00 -> 13.10 ms)")
        assert "83% queue" in lines[0]
        assert "replica 1" in lines[0]


class TestDiffProfile:
    def test_bottleneck_and_movers(self):
        diff = diff_documents(
            profile_doc(), profile_doc(bottleneck="top", top_util=0.95)
        )
        assert diff["kind"] == "profile"
        assert diff["bottleneck"] == {"base": "emb", "fresh": "top"}
        assert diff["movers"][0]["resource"] == "top"
        lines = render_diff(diff)
        assert any("bottleneck stage moved" in line for line in lines)

    def test_no_movement_renders_placeholder(self):
        lines = render_diff(diff_documents(profile_doc(), profile_doc()))
        assert lines == ["no utilization movement between profiles"]


class TestDiffTimeseries:
    def test_worst_window_and_counters(self):
        fresh = timeseries_doc(p99s=(1e6, 5e6), batches=12)
        diff = diff_documents(timeseries_doc(), fresh)
        assert diff["kind"] == "timeseries"
        assert diff["worst_window"]["index"] == 1
        assert diff["worst_window"]["delta_ns"] == pytest.approx(3e6)
        assert diff["counter_deltas"] == [
            {"name": "serving.batches", "total_delta": 2}
        ]
        lines = render_diff(diff)
        assert any("worst window 1" in line for line in lines)

    def test_replica_delta(self):
        diff = diff_documents(
            timeseries_doc(final_replicas=1), timeseries_doc(final_replicas=3)
        )
        assert diff["replicas"] == {"base_final": 1, "fresh_final": 3}
        assert any("final replicas: 1 -> 3" in l for l in render_diff(diff))


class TestExplainFailure:
    def test_renders_embedded_documents(self):
        base = {"explain": explain_doc()}
        fresh = {"explain": explain_doc(p99_ns=13e6, queue_ns=9e6)}
        lines = explain_failure(base, fresh)
        assert lines and lines[0].startswith("p99 +3.00 ms")

    def test_missing_documents_return_empty(self):
        assert explain_failure({}, {}) == []
        assert explain_failure({"explain": explain_doc()}, {}) == []

    def test_malformed_documents_degrade_gracefully(self):
        assert explain_failure(
            {"explain": {"schema": "rmssd-explain/v1"}},
            {"explain": {"schema": "rmssd-profile/v1"}},
        ) == []
        assert explain_failure(
            {"explain": {"schema": "rmssd-explain/v1", "quantiles": [{}]}},
            {"explain": {"schema": "rmssd-explain/v1", "quantiles": [{}]}},
        ) == []
