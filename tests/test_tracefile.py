"""Tests for trace persistence."""

import json

import pytest

from repro.workloads import TraceGenerator
from repro.workloads.tracefile import load_trace, save_trace


class TestRoundTrip:
    def test_roundtrip_identical(self, tmp_path):
        gen = TraceGenerator(4, 1000, 8, seed=3)
        trace = gen.generate(20)
        path = save_trace(tmp_path / "t.jsonl", trace, metadata={"seed": 3})
        loaded, header = load_trace(path)
        assert loaded == trace
        assert header["tables"] == 4
        assert header["inferences"] == 20
        assert header["metadata"] == {"seed": 3}

    def test_loaded_trace_drives_engine_identically(self, tmp_path):
        from repro.core.device import RMSSD
        from repro.models import build_model, get_config
        import numpy as np

        config = get_config("rmc1")
        model = build_model(config, rows_per_table=256, seed=0)
        gen = TraceGenerator(config.num_tables, 256, 4, seed=9)
        trace = gen.generate(2)
        path = save_trace(tmp_path / "t.jsonl", trace)
        loaded, _ = load_trace(path)

        device_a = RMSSD(model, lookups_per_table=4)
        device_b = RMSSD(model, lookups_per_table=4)
        dense = np.zeros((2, config.dense_dim), dtype=np.float32)
        out_a, _ = device_a.infer_batch(dense, trace)
        out_b, _ = device_b.infer_batch(dense, loaded)
        np.testing.assert_array_equal(out_a, out_b)


class TestValidation:
    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "t.jsonl", [])

    def test_inconsistent_tables_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "t.jsonl", [[[1]], [[1], [2]]])

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        gen = TraceGenerator(2, 100, 4, seed=1)
        path = save_trace(tmp_path / "t.jsonl", gen.generate(5))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_table_count_mismatch_in_body(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"format": "rmssd-trace-v1", "tables": 2, "inferences": 1})
            + "\n"
            + json.dumps([[1]])
            + "\n"
        )
        with pytest.raises(ValueError):
            load_trace(path)
