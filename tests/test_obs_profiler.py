"""Unit tests for the utilization profiler (repro.obs.profiler).

Record validation, interval merging, FIFO queue-depth derivation, the
bottleneck report with the paper's embedding-stage invariant, the
deterministic export, and the Null/global/resolve plumbing shared with
the tracer.  End-to-end DES-vs-fastpath byte equivalence lives in
``tests/test_profiler_equivalence.py``.
"""

import json

import pytest
from pytest import approx

from repro.obs.profiler import (
    ENV_FLAG_PROFILE,
    NULL_PROFILER,
    PROFILE_SCHEMA,
    TIMELINE_LIMIT,
    NullProfiler,
    Profiler,
    global_profiler,
    merge_intervals,
    profiling_from_env,
    resolve_profiler,
)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_sorted_output(self):
        merged = merge_intervals([(5.0, 6.0), (1.0, 2.0)])
        assert merged == [(1.0, 2.0), (5.0, 6.0)]

    def test_overlap_coalesces(self):
        assert merge_intervals([(0.0, 3.0), (2.0, 5.0)]) == [(0.0, 5.0)]

    def test_touching_coalesces(self):
        # A die handed straight to the next waiter stays busy.
        assert merge_intervals([(0.0, 2.0), (2.0, 4.0)]) == [(0.0, 4.0)]

    def test_containment(self):
        assert merge_intervals([(0.0, 10.0), (2.0, 3.0)]) == [(0.0, 10.0)]


class TestRecordValidation:
    def test_service_start_before_arrival_rejected(self):
        with pytest.raises(ValueError, match="out of order"):
            Profiler().record_service("bus", 10.0, 5.0, 20.0)

    def test_service_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="out of order"):
            Profiler().record_service("bus", 0.0, 5.0, 4.0)

    def test_busy_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            Profiler().record_busy("die", 5.0, 4.0)

    def test_negative_queue_depth_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Profiler().record_queue_depth("die", 0.0, -1)

    def test_zero_length_records_allowed(self):
        profiler = Profiler()
        profiler.record_service("bus", 1.0, 1.0, 1.0)
        profiler.record_busy("die", 2.0, 2.0)
        assert len(profiler) == 2


class TestDerivedViews:
    def test_utilization_unions_overlap(self):
        profiler = Profiler()
        profiler.record_busy("die", 0.0, 60.0)
        profiler.record_busy("die", 40.0, 100.0)
        assert profiler.elapsed_ns() == 100
        assert profiler.utilizations() == {"die": approx(1.0)}

    def test_service_and_busy_streams_merge_per_resource(self):
        profiler = Profiler()
        profiler.record_busy("x", 0.0, 10.0)
        profiler.record_service("x", 5.0, 5.0, 15.0)
        report = profiler.resource_report(elapsed=20.0)
        assert report["x"]["busy_intervals"] == [[0.0, 15.0]]
        assert report["x"]["utilization"] == approx(0.75)

    def test_elapsed_covers_analytic_stage_tail(self):
        # MLP/host add-ons extend past the DES clock; the horizon must
        # cover them or their utilization would exceed 1.
        profiler = Profiler()
        profiler.record_busy("die", 0.0, 50.0)
        profiler.record_stage(
            start_ns=0.0, nbatch=1, emb_ns=50.0, bot_ns=10.0, top_ns=10.0,
            io_ns=5.0, latency_ns=75.0, serialized=False,
        )
        assert profiler.elapsed_ns() == 75

    def test_fifo_queue_depths_from_service_triples(self):
        # Three jobs arrive at t=0,1,2; service is sequential 10 ns
        # each, so job i sees i earlier jobs still in the system.
        triples = [(0.0, 0.0, 10.0), (1.0, 10.0, 20.0), (2.0, 20.0, 30.0)]
        assert Profiler._service_queue_depths(triples) == [0, 1, 2]

    def test_queue_depth_drops_after_departures(self):
        triples = [(0.0, 0.0, 1.0), (5.0, 5.0, 6.0)]
        assert Profiler._service_queue_depths(triples) == [0, 0]

    def test_queue_summary_merges_samples_and_derived(self):
        profiler = Profiler()
        profiler.record_service("bus", 0.0, 0.0, 10.0)
        profiler.record_service("bus", 1.0, 10.0, 20.0)
        profiler.record_queue_depth("bus", 3.0, 4)
        queue = profiler.resource_report(elapsed=20.0)["bus"]["queue"]
        assert queue["samples"] == 3
        assert queue["max_depth"] == 4
        assert queue["mean_depth"] == approx(5 / 3)

    def test_timeline_truncation_is_announced(self):
        profiler = Profiler()
        for index in range(TIMELINE_LIMIT + 7):
            start = 2.0 * index
            profiler.record_busy("die", start, start + 1.0)
        entry = profiler.resource_report()["die"]
        assert len(entry["busy_intervals"]) == TIMELINE_LIMIT
        assert entry["intervals_omitted"] == 7
        # Truncated timeline, untruncated totals.
        assert entry["busy_ns"] == approx(TIMELINE_LIMIT + 7)

    def test_channel_report_groups_dies_and_bus(self):
        profiler = Profiler()
        profiler.record_busy("channel0-die0", 0.0, 10.0, kind="die")
        profiler.record_busy("channel0-die1", 5.0, 20.0, kind="die")
        profiler.record_service(
            "channel0-bus", 0.0, 18.0, 25.0, kind="channel-bus"
        )
        profiler.record_busy("ev_sum", 0.0, 100.0, kind="ev-sum")
        channels = profiler.channel_report(elapsed=100.0)
        assert list(channels) == ["channel0"]
        assert channels["channel0"]["resources"] == [
            "channel0-bus", "channel0-die0", "channel0-die1",
        ]
        # Union of [0,10], [5,20], [18,25] = [0,25].
        assert channels["channel0"]["busy_ns"] == approx(25.0)
        assert channels["channel0"]["utilization"] == approx(0.25)


class TestBottleneckReport:
    @staticmethod
    def stage(profiler, emb, bot, top, io, serialized=False):
        profiler.record_stage(
            start_ns=0.0, nbatch=2, emb_ns=emb, bot_ns=bot, top_ns=top,
            io_ns=io, latency_ns=emb + bot + top + io, serialized=serialized,
        )

    def test_embedding_bottleneck_invariant_holds(self):
        profiler = Profiler()
        self.stage(profiler, emb=100.0, bot=20.0, top=30.0, io=10.0)
        report = profiler.bottleneck_report()
        assert report["bottleneck_stage"] == "emb"
        assert report["invariant"]["holds"] is True
        assert report["warnings"] == []
        assert report["slack_ns"]["emb"] == approx(0.0)
        assert report["slack_ns"]["top"] == approx(70.0)
        assert report["inferences"] == 2

    def test_exact_tie_resolves_to_embedding(self):
        # The kernel search sizes FC layers *up to* the flash bound;
        # equality still satisfies Rule 4.
        profiler = Profiler()
        self.stage(profiler, emb=50.0, bot=50.0, top=10.0, io=0.0)
        report = profiler.bottleneck_report()
        assert report["bottleneck_stage"] == "emb"
        assert report["invariant"]["holds"] is True

    def test_mlp_domination_warns(self):
        profiler = Profiler()
        self.stage(profiler, emb=40.0, bot=10.0, top=80.0, io=5.0,
                   serialized=True)
        report = profiler.bottleneck_report()
        assert report["bottleneck_stage"] == "top"
        assert report["invariant"]["holds"] is False
        assert report["serialized_batches"] == 1
        (warning,) = report["warnings"]
        assert warning["type"] == "mlp-dominates-embedding"
        assert warning["ratio"] == approx(2.0)

    def test_io_domination_warns(self):
        profiler = Profiler()
        self.stage(profiler, emb=40.0, bot=10.0, top=20.0, io=90.0)
        (warning,) = profiler.bottleneck_report()["warnings"]
        assert warning["type"] == "io-dominates-embedding"

    def test_totals_aggregate_across_batches(self):
        profiler = Profiler()
        self.stage(profiler, emb=10.0, bot=1.0, top=1.0, io=1.0)
        self.stage(profiler, emb=30.0, bot=2.0, top=2.0, io=2.0)
        report = profiler.bottleneck_report()
        assert report["batches"] == 2
        assert report["stage_totals_ns"]["emb"] == approx(40.0)
        assert report["stage_means_ns"]["emb"] == approx(20.0)

    def test_empty_profile_reports_zero_stages(self):
        report = Profiler().bottleneck_report()
        assert report["batches"] == 0
        assert report["stage_totals_ns"] == {
            "emb": 0.0, "bot": 0.0, "top": 0.0, "io": 0.0,
        }


class TestExport:
    def test_schema_and_meta(self, tmp_path):
        profiler = Profiler()
        profiler.record_busy("die", 0.0, 10.0)
        profiler.set_meta(model="rmc1", backend="rm-ssd")
        payload = profiler.as_dict()
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["meta"] == {"backend": "rm-ssd", "model": "rmc1"}

    def test_export_is_recording_order_independent(self, tmp_path):
        forward, backward = Profiler(), Profiler()
        forward.record_busy("die", 0.0, 10.0)
        forward.record_busy("die", 20.0, 30.0)
        backward.record_busy("die", 20.0, 30.0)
        backward.record_busy("die", 0.0, 10.0)
        a = forward.export_json(str(tmp_path / "a.json"))
        b = backward.export_json(str(tmp_path / "b.json"))
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_export_round_trips_as_json(self, tmp_path):
        profiler = Profiler()
        profiler.record_service("bus", 0.0, 0.0, 5.0)
        path = profiler.export_json(str(tmp_path / "p.json"))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["resources"]["bus"]["jobs"] == 1


class TestNullAndResolution:
    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.enabled is False
        assert len(NULL_PROFILER) == 0
        NULL_PROFILER.record_service("x", 0.0, 0.0, 1.0)
        NULL_PROFILER.record_busy("x", 0.0, 1.0)
        NULL_PROFILER.record_queue_depth("x", 0.0, 3)
        NULL_PROFILER.record_stage(0.0, 1, 1.0, 1.0, 1.0, 1.0, 4.0, False)
        NULL_PROFILER.set_meta(model="rmc1")
        assert len(NULL_PROFILER) == 0
        assert NULL_PROFILER.utilizations() == {}
        assert NULL_PROFILER.resource_report() == {}
        assert NULL_PROFILER.bottleneck_report() == {}

    def test_null_export_refuses(self, tmp_path):
        with pytest.raises(RuntimeError, match="disabled"):
            NullProfiler().export_json(str(tmp_path / "x.json"))

    def test_env_flag_parsing(self, monkeypatch):
        for value in ("1", "true", "ON", " yes "):
            monkeypatch.setenv(ENV_FLAG_PROFILE, value)
            assert profiling_from_env() is True
        for value in ("", "0", "off", "no"):
            monkeypatch.setenv(ENV_FLAG_PROFILE, value)
            assert profiling_from_env() is False
        monkeypatch.delenv(ENV_FLAG_PROFILE)
        assert profiling_from_env() is False

    def test_global_profiler_null_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG_PROFILE, raising=False)
        assert global_profiler() is NULL_PROFILER

    def test_global_profiler_shared_with_env(self, monkeypatch):
        import repro.obs.profiler as module

        monkeypatch.setenv(ENV_FLAG_PROFILE, "1")
        monkeypatch.setattr(module, "_global_profiler", None)
        first = global_profiler()
        assert isinstance(first, Profiler)
        assert global_profiler() is first

    def test_resolve_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG_PROFILE, "1")
        mine = Profiler()
        assert resolve_profiler(mine) is mine
        monkeypatch.delenv(ENV_FLAG_PROFILE)
        assert resolve_profiler(None) is NULL_PROFILER
