"""Sanitizer mode: injected invariant violations must be caught.

Each test injects one violation of a documented simulator invariant
and checks that sanitizer mode turns it into a structured
:class:`~repro.sim.sanitizer.SanitizerError` naming the invariant, the
component, and the simulated timestamp.
"""
# lint: ok-file[R3] — violation injection requires driving Event.succeed
# and kernel internals directly.

import pytest

from repro.sim import SanitizerError, Simulator, sanitize_from_env
from repro.sim.engine import SimulationError
from repro.sim.sanitizer import Sanitizer
from repro.ssd.controller import SSDController
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def small_geometry():
    return SSDGeometry(
        channels=2,
        dies_per_channel=2,
        planes_per_die=1,
        blocks_per_plane=4,
        pages_per_block=8,
    )


class TestFlagPlumbing:
    def test_explicit_flag_attaches_sanitizer(self):
        assert Simulator(sanitize=True).sanitizer is not None
        assert Simulator(sanitize=False).sanitizer is None

    def test_env_flag_controls_default(self, monkeypatch):
        monkeypatch.setenv("RMSSD_SANITIZE", "0")
        assert not sanitize_from_env()
        assert Simulator().sanitizer is None
        monkeypatch.setenv("RMSSD_SANITIZE", "1")
        assert sanitize_from_env()
        assert Simulator().sanitizer is not None

    def test_substrate_inherits_sanitizer(self):
        sim = Simulator(sanitize=True)
        ctrl = SSDController(sim, small_geometry())
        assert ctrl.flash.sanitizer is sim.sanitizer
        assert ctrl.ftl.sanitizer is sim.sanitizer

    def test_error_carries_context(self):
        sim = Simulator(sanitize=True)
        sim.now = 123.0
        with pytest.raises(SanitizerError) as exc:
            sim.sanitizer.error("single-trigger", "Event", "boom")
        assert exc.value.invariant == "single-trigger"
        assert exc.value.component == "Event"
        assert exc.value.time_ns == 123
        assert "t=123ns" in str(exc.value)

    def test_sanitizer_error_is_a_simulation_error(self):
        # Existing `except SimulationError` handlers keep working.
        assert issubclass(SanitizerError, SimulationError)


class TestKernelInvariants:
    def test_double_succeed_is_flagged(self):
        sim = Simulator(sanitize=True)
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SanitizerError) as exc:
            event.succeed(2)
        assert exc.value.invariant == "single-trigger"

    def test_double_fire_is_flagged(self):
        sim = Simulator(sanitize=True)
        event = sim.event()
        event.succeed("once")
        sim.run()
        with pytest.raises(SanitizerError):
            event._fire()

    def test_double_fire_is_silent_without_sanitizer(self):
        sim = Simulator(sanitize=False)
        event = sim.event()
        event.succeed("once")
        sim.run()
        event._fire()  # silently ignored (pre-sanitizer behaviour)

    def test_schedule_into_the_past_is_flagged(self):
        sim = Simulator(sanitize=True)
        with pytest.raises(SanitizerError) as exc:
            sim._schedule(sim.event(), delay=-5.0)
        assert exc.value.invariant == "monotonic-clock"

    def test_resume_after_termination_is_flagged(self):
        sim = Simulator(sanitize=True)

        def worker():
            yield sim.timeout(1)
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert proc.value == "done"
        dead = sim.event()
        dead.value = None
        with pytest.raises(SanitizerError) as exc:
            proc._resume(dead)
        assert exc.value.invariant == "no-dead-resume"

    def test_resume_after_termination_silent_without_sanitizer(self):
        sim = Simulator(sanitize=False)

        def worker():
            yield sim.timeout(1)

        proc = sim.process(worker())
        sim.run()
        proc._resume(sim.event())  # silently ignored


class TestFlashInvariants:
    def test_program_without_erase_is_flagged(self):
        sim = Simulator(sanitize=True)
        flash = FlashArray(sim, small_geometry())
        sim.process(flash.write_page_proc(0, b"first"))
        sim.run()
        sim.process(flash.write_page_proc(0, b"again"))
        with pytest.raises(SanitizerError) as exc:
            sim.run()
        assert exc.value.invariant == "erase-before-write"

    def test_erase_block_allows_reprogram(self):
        sim = Simulator(sanitize=True)
        flash = FlashArray(sim, small_geometry())
        sim.process(flash.write_page_proc(0, b"first"))
        sim.run()
        flash.erase_block(0)
        assert flash.peek(0, 0, 5) == bytes(5)  # erased data is gone
        sim.process(flash.write_page_proc(0, b"again"))
        sim.run()
        assert flash.peek(0, 0, 5) == b"again"

    def test_erase_is_block_granular(self):
        sim = Simulator(sanitize=True)
        geo = small_geometry()
        flash = FlashArray(sim, geo)
        # Page 0 and the next page of the same block (one channel-major
        # stride of channels*dies*planes pages away) share a block.
        stride = geo.channels * geo.dies_per_channel * geo.planes_per_die
        sim.process(flash.write_page_proc(0, b"a"))
        sim.process(flash.write_page_proc(stride, b"b"))
        sim.run()
        flash.erase_block(0)
        assert flash.peek(stride, 0, 1) == b"\x00"

    def test_negative_latency_is_flagged(self):
        sim = Simulator(sanitize=True)
        timing = SSDTimingModel(request_overhead_cycles=-4000)
        flash = FlashArray(sim, small_geometry(), timing)
        sim.process(flash.read_page_proc(0))
        with pytest.raises(SanitizerError) as exc:
            sim.run()
        assert exc.value.invariant == "non-negative-latency"

    def test_reads_leave_channels_quiescent(self):
        sim = Simulator(sanitize=True)
        flash = FlashArray(sim, small_geometry())
        flash.run_reads(range(8), vector=False)
        for channel in flash.channels:
            assert sim.sanitizer.channel_in_flight(channel.name) == 0


class TestQueueConservation:
    def test_completion_without_enqueue_is_flagged(self):
        sim = Simulator(sanitize=True)
        sanitizer = sim.sanitizer
        sanitizer.channel_enqueue("channel0")
        sanitizer.channel_complete("channel0")
        with pytest.raises(SanitizerError) as exc:
            sanitizer.channel_complete("channel0")
        assert exc.value.invariant == "queue-conservation"

    def test_drain_with_in_flight_request_is_flagged(self):
        sim = Simulator(sanitize=True)
        sim.sanitizer.channel_enqueue("channel0")
        with pytest.raises(SanitizerError) as exc:
            sim.run()
        assert exc.value.invariant == "queue-conservation"


class TestL2PInvariants:
    def test_aliasing_mapping_is_flagged(self):
        class AliasingMapping:
            def translate(self, lba):
                return 0  # every LBA lands on physical page 0

            def map_write(self, lba):
                return 0

        sim = Simulator(sanitize=True)
        geo = small_geometry()
        ftl = FlashTranslationLayer(geo, mapping=AliasingMapping())
        ctrl = SSDController(sim, geo, ftl=ftl)
        assert ctrl.ftl.translate(0) == 0
        with pytest.raises(SanitizerError) as exc:
            ctrl.ftl.translate(1)
        assert exc.value.invariant == "l2p-injective"

    def test_out_of_bounds_mapping_is_flagged(self):
        class WildMapping:
            def translate(self, lba):
                return 10**9

        sim = Simulator(sanitize=True)
        geo = small_geometry()
        ftl = FlashTranslationLayer(geo, mapping=WildMapping())
        ftl.attach_sanitizer(sim.sanitizer)
        with pytest.raises(SanitizerError) as exc:
            ftl.translate(0)
        assert exc.value.invariant == "l2p-in-bounds"

    def test_linear_mapping_is_clean(self):
        sim = Simulator(sanitize=True)
        ctrl = SSDController(sim, small_geometry())
        for lba in range(16):
            assert ctrl.ftl.translate(lba) == lba

    def test_remap_releases_old_physical_page(self):
        sanitizer = Sanitizer(Simulator(sanitize=False))
        sanitizer.on_translate(0, 5, 100)
        sanitizer.on_translate(0, 6, 100)  # LBA 0 remapped (trim)
        sanitizer.on_translate(1, 5, 100)  # page 5 is free again
