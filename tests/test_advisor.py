"""Tests for the deployment advisor."""

import pytest

from repro.analysis.advisor import Advice, advise
from repro.fpga.specs import FPGAPart
from repro.models import get_config


class TestAdvise:
    def test_rmc1_latency_bound_recommendation(self):
        advice = advise(get_config("rmc1"))
        assert advice.dominated_by == "embedding"
        assert advice.fits_low_end
        # RM-SSD wins batch-1 but batched DRAM overtakes (Fig. 12a).
        assert advice.rmssd_qps > advice.dram_qps_batch1
        assert advice.dram_qps_batched > advice.rmssd_qps
        assert "latency-bound" in advice.recommendation

    def test_mlp_dominated_models_recommend_rmssd(self):
        for key in ("rmc3", "ncf", "wnd"):
            advice = advise(get_config(key))
            assert advice.dominated_by == "mlp", key
            assert advice.recommendation == "RM-SSD", key
            assert advice.rmssd_qps >= advice.dram_qps_batched, key

    def test_rmc3_spills_and_batches(self):
        advice = advise(get_config("rmc3"))
        assert advice.device_nbatch == 4
        assert "Lb0" in advice.spilled_layers

    def test_paper_capacity_reported(self):
        advice = advise(get_config("rmc2"))
        assert advice.embedding_bytes_paper == pytest.approx(
            30 * (1 << 30), rel=0.01
        )

    def test_tiny_part_fails_fit(self):
        tiny = FPGAPart("tiny", luts=100, ffs=100, brams=1, dsps=1)
        advice = advise(get_config("rmc1"), target_part=tiny)
        assert not advice.fits_low_end
        assert "host-side serving" in advice.recommendation

    def test_render_mentions_key_facts(self):
        text = advise(get_config("rmc1")).render()
        assert "RMC1" in text
        assert "recommendation:" in text
        assert "QPS" in text
