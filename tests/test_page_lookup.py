"""Tests for the page-granular in-SSD lookup path (EMB-PageSum DES)."""

import numpy as np
import pytest

from repro.core.lookup_engine import EmbeddingLookupEngine
from repro.core.page_lookup import PageLookupEngine
from repro.embedding.layout import EmbeddingLayout
from repro.embedding.pooling import sls_batch
from repro.embedding.table import EmbeddingTableSet
from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry


def make_engines(num_tables=4, rows=64, dim=32):
    geo = SSDGeometry(
        channels=4, dies_per_channel=2, planes_per_die=2,
        blocks_per_plane=32, pages_per_block=32,
    )
    tables = EmbeddingTableSet.uniform(num_tables, rows, dim, seed=8)

    device_a = BlockDevice(SSDController(Simulator(), geo))
    layout_a = EmbeddingLayout(device_a, tables)
    layout_a.create_all()
    page_engine = PageLookupEngine(device_a.controller, layout_a)

    device_b = BlockDevice(SSDController(Simulator(), geo))
    layout_b = EmbeddingLayout(device_b, tables)
    layout_b.create_all()
    vector_engine = EmbeddingLookupEngine(device_b.controller, layout_b)
    return tables, page_engine, vector_engine


class TestPageLookup:
    def test_numerics_match_reference(self):
        tables, page_engine, _ = make_engines()
        batch = [
            [[0, 1, 2], [5], [10, 20], [63]],
            [[7], [8, 9], [1, 1], [0]],
        ]
        pooled, elapsed, pages = page_engine.lookup_batch(batch)
        np.testing.assert_array_equal(pooled, sls_batch(tables, batch))
        assert pages == 13  # one page read per lookup, duplicates included
        assert elapsed > 0

    def test_page_path_slower_than_vector_path_in_bulk(self):
        tables, page_engine, vector_engine = make_engines()
        rng = np.random.default_rng(0)
        batch = [
            [list(rng.integers(0, 64, size=16)) for _ in range(4)]
            for _ in range(4)
        ]
        _, page_ns, _ = page_engine.lookup_batch(batch)
        vec_result = vector_engine.lookup_batch(batch)
        # Section IV-B2: vector-grained reads increase bulk throughput;
        # under identical queueing the page path is strictly slower.
        assert page_ns > vec_result.elapsed_ns

    def test_page_reads_stay_internal(self):
        tables, page_engine, _ = make_engines()
        page_engine.lookup_batch([[[0], [1], [2], [3]]])
        stats = page_engine.controller.stats
        assert stats.flash_page_reads == 4
        assert stats.host_read_bytes == 0  # pooled in-device

    def test_bus_traffic_ratio_matches_page_vector_ratio(self):
        tables, page_engine, vector_engine = make_engines()
        batch = [[[0], [1], [2], [3]]]
        page_engine.lookup_batch(batch)
        vector_engine.lookup_batch(batch)
        page_bytes = page_engine.controller.stats.flash_bus_bytes
        vector_bytes = vector_engine.controller.stats.flash_bus_bytes
        assert page_bytes == 4 * 4096
        assert vector_bytes == 4 * tables.ev_size
        assert page_bytes // vector_bytes == 4096 // tables.ev_size

    def test_wrong_table_count_rejected(self):
        tables, page_engine, _ = make_engines(num_tables=2)
        with pytest.raises(ValueError):
            page_engine.lookup_batch([[[0]]])

    def test_des_ratio_near_analytic_ratio(self):
        # The measured page/vector time ratio should land near the
        # analytic bandwidth ratio (~1.4x at 4 ch x 2 dies).
        from repro.core.lookup_engine import (
            effective_page_bandwidth,
            effective_vector_bandwidth,
        )
        from repro.ssd.timing import SSDTimingModel

        tables, page_engine, vector_engine = make_engines()
        rng = np.random.default_rng(1)
        batch = [
            [list(rng.integers(0, 64, size=32)) for _ in range(4)]
            for _ in range(2)
        ]
        _, page_ns, _ = page_engine.lookup_batch(batch)
        vec_ns = vector_engine.lookup_batch(batch).elapsed_ns
        geo = page_engine.controller.geometry
        timing = SSDTimingModel()
        analytic_ratio = effective_vector_bandwidth(
            geo, timing, tables.ev_size
        ) / effective_page_bandwidth(geo, timing)
        assert page_ns / vec_ns == pytest.approx(analytic_ratio, rel=0.35)
