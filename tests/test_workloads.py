"""Tests for trace generation, locality control, and Fig. 4 statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    K_TO_HIT_RATIO,
    RequestGenerator,
    TraceGenerator,
    TraceStatistics,
    hit_ratio_for_k,
    measured_cache_hit_ratio,
)
from repro.models import get_config


class TestTraceGenerator:
    def _gen(self, hot=0.65, rows=50_000, seed=0):
        return TraceGenerator(
            num_tables=4,
            rows_per_table=rows,
            lookups_per_table=20,
            hot_access_fraction=hot,
            seed=seed,
        )

    def test_sample_shape(self):
        gen = self._gen()
        sample = gen.sample()
        assert len(sample) == 4
        assert all(len(lookups) == 20 for lookups in sample)
        assert all(0 <= i < 50_000 for lookups in sample for i in lookups)

    def test_deterministic_for_seed(self):
        a = self._gen(seed=3).generate(5)
        b = self._gen(seed=3).generate(5)
        assert a == b

    def test_hot_set_receives_target_fraction(self):
        gen = self._gen(hot=0.65)
        trace = gen.generate(200)
        hot_sets = [set(s.tolist()) for s in gen._hot_sets]
        hot = total = 0
        for sample in trace:
            for table_id, lookups in enumerate(sample):
                for index in lookups:
                    total += 1
                    hot += index in hot_sets[table_id]
        assert hot / total == pytest.approx(0.65, abs=0.03)

    def test_zero_locality_trace(self):
        gen = self._gen(hot=0.0)
        trace = gen.generate(50)
        flat = gen.flat_indices(trace)
        # Uniform draws over 50K rows: almost all distinct.
        assert len(np.unique(flat)) > 0.9 * len(flat)

    def test_full_locality_trace(self):
        gen = self._gen(hot=1.0)
        trace = gen.generate(50)
        flat = gen.flat_indices(trace)
        assert len(np.unique(flat)) <= 4 * gen.hot_set_size

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            self._gen(hot=1.5)
        with pytest.raises(ValueError):
            TraceGenerator(0, 10, 1)

    def test_cache_hit_ratio_converges_to_hot_fraction(self):
        # A cache holding the whole hot set hits ~ the hot fraction.
        gen = self._gen(hot=0.65, rows=200_000)
        trace = gen.generate(300)
        flat = gen.flat_indices(trace)
        ratio = measured_cache_hit_ratio(flat, capacity_entries=8 * gen.hot_set_size)
        # Tail-of-Zipf hot entries occasionally fall out of the LRU, so
        # the measured ratio sits a little under the configured target.
        assert ratio == pytest.approx(0.62, abs=0.08)

    def test_lower_locality_means_lower_hit_ratio(self):
        ratios = []
        for hot in (0.80, 0.45):
            gen = self._gen(hot=hot, rows=200_000, seed=1)
            flat = gen.flat_indices(gen.generate(200))
            ratios.append(
                measured_cache_hit_ratio(flat, capacity_entries=8 * gen.hot_set_size)
            )
        assert ratios[0] > ratios[1] + 0.2


class TestLocalityMapping:
    def test_published_points_exact(self):
        assert hit_ratio_for_k(0) == 0.80
        assert hit_ratio_for_k(0.3) == 0.65
        assert hit_ratio_for_k(1) == 0.45
        assert hit_ratio_for_k(2) == 0.30

    def test_interpolation_monotone(self):
        ks = [0, 0.1, 0.3, 0.5, 1.0, 1.5, 2.0]
        ratios = [hit_ratio_for_k(k) for k in ks]
        assert ratios == sorted(ratios, reverse=True)

    def test_clamping_beyond_range(self):
        assert hit_ratio_for_k(5.0) == 0.30

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            hit_ratio_for_k(-1)

    @given(k=st.floats(min_value=0, max_value=2))
    def test_ratio_in_published_band(self, k):
        assert 0.30 <= hit_ratio_for_k(k) <= 0.80


class TestTraceStatistics:
    def test_fig4_style_statistics(self):
        gen = TraceGenerator(
            num_tables=1,
            rows_per_table=500_000,
            lookups_per_table=50,
            hot_access_fraction=0.60,
            seed=2,
        )
        flat = gen.flat_indices(gen.generate(400))
        stats = TraceStatistics.from_indices(flat)
        # Fig. 4 qualitative shape: the cold tail is dominated by
        # once-accessed indices; the hot head owns most lookups.
        assert stats.unique_access_fraction() > 0.55
        assert stats.top_k_share(gen.hot_set_size) > 0.50

    def test_counts_consistent(self):
        stats = TraceStatistics.from_indices([1, 1, 2, 3, 3, 3])
        assert stats.total_lookups == 6
        assert stats.total_indices == 3
        assert stats.occurrence_counts == {1: 1, 2: 1, 3: 1}

    def test_unique_fraction(self):
        stats = TraceStatistics.from_indices([1, 2, 3, 3])
        assert stats.unique_access_fraction() == pytest.approx(2 / 3)

    def test_top_k_share_extremes(self):
        stats = TraceStatistics.from_indices([7] * 99 + [1])
        assert stats.top_k_share(1) == pytest.approx(0.99)
        assert stats.top_k_share(2) == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceStatistics.from_indices([])

    def test_invalid_k_rejected(self):
        stats = TraceStatistics.from_indices([1, 2])
        with pytest.raises(ValueError):
            stats.top_k_share(0)

    def test_summary_renders(self):
        stats = TraceStatistics.from_indices([1, 1, 2])
        assert "lookups=3" in stats.summary()


class TestRequestGenerator:
    def test_request_shapes(self):
        config = get_config("rmc1")
        gen = RequestGenerator(config, rows_per_table=128, seed=0)
        request = gen.request(batch_size=4)
        assert request.batch_size == 4
        assert request.dense.shape == (4, config.dense_dim)
        assert len(request.sparse[0]) == config.num_tables
        assert len(request.sparse[0][0]) == config.lookups_per_table

    def test_dense_none_for_ncf(self):
        config = get_config("ncf")
        gen = RequestGenerator(config, rows_per_table=64)
        assert gen.request(2).dense is None

    def test_requests_count(self):
        config = get_config("rmc1")
        gen = RequestGenerator(config, rows_per_table=64)
        assert len(gen.requests(7, batch_size=2)) == 7

    def test_invalid_batch(self):
        config = get_config("rmc1")
        gen = RequestGenerator(config, rows_per_table=64)
        with pytest.raises(ValueError):
            gen.request(0)
