"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.charts import bar_chart, line_chart


class TestBarChart:
    def test_renders_all_labels(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], title="T")
        assert "T" in text
        assert "a " in text and "bb" in text

    def test_longest_bar_is_max(self):
        text = bar_chart(["small", "big"], [1.0, 10.0], width=20)
        lines = text.splitlines()
        small_bar = lines[0].count("#")
        big_bar = lines[1].count("#")
        assert big_bar == 20
        assert small_bar < big_bar

    def test_log_scale_compresses(self):
        linear = bar_chart(["a", "b"], [1.0, 1000.0], width=30)
        logged = bar_chart(["a", "b"], [1.0, 1000.0], width=30, log=True)
        assert linear.splitlines()[0].count("#") < logged.splitlines()[0].count("#")

    def test_zero_value_no_bar(self):
        text = bar_chart(["z"], [0.0])
        assert text.splitlines()[0].count("#") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])


class TestLineChart:
    def test_renders_axis_and_legend(self):
        text = line_chart(
            {"up": [1, 2, 3], "down": [3, 2, 1]}, ["1", "2", "3"], title="L"
        )
        assert "o=up" in text and "x=down" in text
        assert "1" in text and "3" in text

    def test_monotone_series_rises(self):
        text = line_chart({"s": [0.0, 10.0]}, ["a", "b"], height=10)
        grid = [line for line in text.splitlines() if line.startswith("|")]
        rows = [i for i, line in enumerate(grid) if "o" in line]
        assert len(rows) == 2
        # The larger value's marker sits on an upper row, and its x
        # position is further right.
        assert grid[rows[0]].index("o") > grid[rows[1]].index("o")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [1, 2]}, ["a"])
        with pytest.raises(ValueError):
            line_chart({}, ["a"])

    def test_log_mode_annotated(self):
        text = line_chart({"s": [1, 100]}, ["a", "b"], log=True)
        assert "(log y)" in text
