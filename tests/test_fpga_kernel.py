"""Tests for the FC kernel timing model and specs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fpga.kernel import (
    KernelSize,
    adder_tree_depth,
    batch_cycles,
    dram_layer_kernel,
    layer_cycles,
)
from repro.fpga.resources import ResourceVector
from repro.fpga.specs import XC7A200T, XCVU9P, FPGASettings


class TestKernelSize:
    def test_area(self):
        assert KernelSize(4, 2).area == 8

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            KernelSize(3, 2)
        with pytest.raises(ValueError):
            KernelSize(4, 6)

    def test_positive_enforced(self):
        with pytest.raises(ValueError):
            KernelSize(0, 2)

    def test_str(self):
        assert str(KernelSize(16, 8)) == "16x8"


class TestLayerCycles:
    def test_paper_formula_for_divisible_shapes(self):
        # RC / (kr*kc) * II for exactly divisible layers.
        settings = FPGASettings()
        assert layer_cycles(256, 256, KernelSize(4, 2), settings) == (
            256 * 256 // 8 * 8
        )

    def test_ceiling_for_non_divisible(self):
        settings = FPGASettings()
        # R=5, kr=4 -> 2 row strips.
        assert layer_cycles(5, 4, KernelSize(4, 4), settings) == 2 * 1 * 8

    def test_larger_kernel_is_faster(self):
        slow = layer_cycles(512, 256, KernelSize(2, 2))
        fast = layer_cycles(512, 256, KernelSize(8, 8))
        assert fast < slow
        assert slow == 16 * fast

    @given(
        rows=st.integers(min_value=1, max_value=512),
        cols=st.integers(min_value=1, max_value=512),
        kr_log=st.integers(min_value=0, max_value=4),
        kc_log=st.integers(min_value=0, max_value=4),
    )
    def test_cycles_bounds_property(self, rows, cols, kr_log, kc_log):
        settings = FPGASettings()
        kernel = KernelSize(1 << kr_log, 1 << kc_log)
        cycles = layer_cycles(rows, cols, kernel, settings)
        ideal = rows * cols / kernel.area * settings.ii
        assert cycles >= ideal - 1e-9
        # Ceiling never more than doubles each dimension's ideal count.
        assert cycles <= (rows / kernel.kr + 1) * (cols / kernel.kc + 1) * settings.ii

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            layer_cycles(0, 4, KernelSize(2, 2))


class TestBatchCycles:
    def test_batch_free_up_to_ii(self):
        # Up to II samples ride the pipeline at no extra cost.
        settings = FPGASettings()
        single = batch_cycles(128, 64, KernelSize(4, 2), 1, settings)
        assert batch_cycles(128, 64, KernelSize(4, 2), settings.ii, settings) == single

    def test_batch_steps_beyond_ii(self):
        settings = FPGASettings()
        single = batch_cycles(128, 64, KernelSize(4, 2), 1, settings)
        assert batch_cycles(128, 64, KernelSize(4, 2), 9, settings) == 2 * single

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_cycles(8, 8, KernelSize(2, 2), 0)


class TestDramKernel:
    def test_rule_two_shape(self):
        # 64 B DDR4 bus -> 16 fp32 words; kc = II = 8 (Table V's 16x8).
        kernel = dram_layer_kernel(FPGASettings())
        assert kernel.kr == 16
        assert kernel.kc == 8

    def test_dram_layer_time_is_streaming_time(self):
        # RC / Dwidth cycles: the kernel exactly consumes the bus.
        settings = FPGASettings()
        kernel = dram_layer_kernel(settings)
        cycles = layer_cycles(2560, 1024, kernel, settings)
        assert cycles == 2560 * 1024 // settings.dram_words_per_cycle


class TestSpecs:
    def test_part_capacities_match_table_vi(self):
        assert XCVU9P.luts == 1_181_768
        assert XCVU9P.dsps == 6840
        assert XC7A200T.brams == 365
        assert XC7A200T.dsps == 740

    def test_fits(self):
        small = ResourceVector(lut=1000, ff=1000, bram=10, dsp=10)
        huge = ResourceVector(lut=10**7, ff=0, bram=0, dsp=0)
        assert XC7A200T.fits(small)
        assert not XC7A200T.fits(huge)

    def test_utilization(self):
        usage = ResourceVector(lut=XC7A200T.luts // 2, ff=0, bram=0, dsp=0)
        assert XC7A200T.utilization(usage)["lut"] == pytest.approx(0.5)

    def test_settings_constants(self):
        settings = FPGASettings()
        assert settings.ii == 8
        assert settings.cycle_ns == pytest.approx(5.0)
        assert settings.dram_words_per_cycle == 16
        assert settings.kmax == 16

    def test_adder_tree_depth(self):
        assert adder_tree_depth(1) == 0
        assert adder_tree_depth(8) == 3
