"""Tests for the host cost model and pipelining helper."""

import pytest

from repro.host.costs import HostCostModel
from repro.host.runtime import HostPipeline


class TestHostCostModel:
    def test_dram_rmc1_inference_near_paper(self):
        # Fig. 2(a): DRAM-only RMC1 batch-1 is ~1.4 ms per inference.
        costs = HostCostModel()
        emb = costs.sls_op_ns(tables=8, total_vectors=640)
        mlp = costs.mlp_ns(10_240, 2, 1) + costs.mlp_ns(90_176, 3, 1)
        total_ns = emb + mlp + costs.concat_ns()
        assert 0.8e6 < total_ns < 2.0e6

    def test_fileio_miss_costs_more_than_hit(self):
        costs = HostCostModel()
        assert costs.fileio_lookup_ns(True, 0.25) > 5 * costs.fileio_lookup_ns(
            False, 0.25
        )

    def test_memory_pressure_orders_ssd_s_and_m(self):
        costs = HostCostModel()
        assert costs.memory_pressure_factor(0.25) > costs.memory_pressure_factor(0.5)
        assert costs.memory_pressure_factor(1.0) == 1.0

    def test_negative_dram_fraction_rejected(self):
        with pytest.raises(ValueError):
            HostCostModel().memory_pressure_factor(-0.1)

    def test_fileio_miss_includes_readahead_device_time(self):
        costs = HostCostModel()
        miss = costs.fileio_lookup_ns(True, 1.0)
        assert miss >= costs.readahead_pages * costs.device_page_read_ns

    def test_mlp_batched_amortizes_dispatch(self):
        # Small models are dispatch-bound: 32x the work costs far less
        # than 32x the time (Fig. 2's sub-linear DRAM batch scaling).
        costs = HostCostModel()
        single = costs.mlp_ns(10_000, 3, 1)
        batched = costs.mlp_ns(10_000, 3, 32)
        assert batched < 2 * single

    def test_pcie_transfer_linear(self):
        costs = HostCostModel()
        assert costs.pcie_transfer_ns(4096) == pytest.approx(4096 / 3.2)


class TestHostPipeline:
    def test_serial_total(self):
        pipe = HostPipeline(pipelined=False)
        pipe.add(10, 100, 5)
        pipe.add(10, 100, 5)
        assert pipe.total_ns() == 230

    def test_pipelined_total(self):
        pipe = HostPipeline(pipelined=True)
        pipe.add(10, 100, 5)
        pipe.add(10, 100, 5)
        pipe.add(10, 100, 5)
        # First fills (115), the rest cost their bottleneck (100).
        assert pipe.total_ns() == 115 + 200

    def test_speedup_from_pipelining(self):
        pipe = HostPipeline(pipelined=True)
        for _ in range(100):
            pipe.add(50, 100, 50)
        assert pipe.speedup_from_pipelining() > 1.5

    def test_empty_pipeline(self):
        assert HostPipeline().total_ns() == 0.0

    def test_extend(self):
        pipe = HostPipeline()
        pipe.extend([(1, 2, 3), (4, 5, 6)])
        assert pipe.requests == 2
