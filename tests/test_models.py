"""Tests for the model zoo: layers, MLP, DLRM, NCF, WnD, configs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    DLRM,
    MLP,
    MODEL_CONFIGS,
    Activation,
    FCLayer,
    NCF,
    WideAndDeep,
    build_model,
    get_config,
)
from repro.embedding.table import EmbeddingTableSet


class TestFCLayer:
    def test_forward_shape(self):
        layer = FCLayer(8, 4)
        assert layer(np.zeros(8, dtype=np.float32)).shape == (4,)
        assert layer(np.zeros((3, 8), dtype=np.float32)).shape == (3, 4)

    def test_relu_clamps_negative(self):
        layer = FCLayer(2, 2, weight=-np.eye(2, dtype=np.float32))
        out = layer(np.array([1.0, 2.0], dtype=np.float32))
        assert np.array_equal(out, [0.0, 0.0])

    def test_sigmoid_range(self):
        layer = FCLayer(4, 1, activation=Activation.SIGMOID)
        out = layer(np.random.default_rng(0).standard_normal(4).astype(np.float32))
        assert 0.0 < out[0] < 1.0

    def test_none_activation_is_linear(self):
        weight = np.eye(3, dtype=np.float32)
        layer = FCLayer(3, 3, activation=Activation.NONE, weight=weight)
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        assert np.array_equal(layer(x), x)

    def test_bias_applied(self):
        layer = FCLayer(
            2, 2,
            activation=Activation.NONE,
            weight=np.zeros((2, 2), dtype=np.float32),
            bias=np.array([1.0, -1.0], dtype=np.float32),
        )
        assert np.array_equal(layer(np.zeros(2)), [1.0, -1.0])

    def test_output_is_fp32(self):
        layer = FCLayer(4, 4)
        assert layer(np.zeros(4)).dtype == np.float32

    def test_wrong_input_width_rejected(self):
        with pytest.raises(ValueError):
            FCLayer(4, 2)(np.zeros(5))

    def test_macs_and_weight_bytes(self):
        layer = FCLayer(10, 20)
        assert layer.macs == 200
        assert layer.weight_bytes == (200 + 20) * 4

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError):
            FCLayer(4, 2, weight=np.zeros((2, 4), dtype=np.float32))


class TestMLP:
    def test_from_widths_chain(self):
        mlp = MLP.from_widths(288, [256, 64, 1])
        assert mlp.shapes() == [(288, 256), (256, 64), (64, 1)]
        assert mlp.input_dim == 288
        assert mlp.output_dim == 1

    def test_mismatched_layers_rejected(self):
        with pytest.raises(ValueError):
            MLP([FCLayer(4, 8), FCLayer(9, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MLP([])
        with pytest.raises(ValueError):
            MLP.from_widths(4, [])

    def test_forward_batch(self):
        mlp = MLP.from_widths(8, [4, 2])
        assert mlp(np.zeros((5, 8), dtype=np.float32)).shape == (5, 2)

    def test_macs_sum(self):
        mlp = MLP.from_widths(128, [64, 32])
        assert mlp.macs == 128 * 64 + 64 * 32

    def test_deterministic_seed(self):
        a = MLP.from_widths(8, [4], seed=5)
        b = MLP.from_widths(8, [4], seed=5)
        x = np.ones(8, dtype=np.float32)
        assert np.array_equal(a(x), b(x))


class TestDLRM:
    def _model(self):
        return build_model(get_config("rmc1"), rows_per_table=64, seed=1)

    def test_forward_one_output_in_unit_interval(self):
        model = self._model()
        sparse = [[0, 1, 2]] * model.num_tables
        out = model.forward_one(np.zeros(model.dense_dim), sparse)
        assert out.shape == (1,)
        assert 0.0 <= out[0] <= 1.0

    def test_forward_batch_shape(self):
        model = self._model()
        batch = 4
        dense = np.zeros((batch, model.dense_dim), dtype=np.float32)
        sparse = [[[i]] * model.num_tables for i in range(batch)]
        assert model.forward(dense, sparse).shape == (batch, 1)

    def test_batch_size_mismatch_rejected(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.forward(np.zeros((2, model.dense_dim)), [[[0]] * 8])

    def test_interaction_is_concat_bottom_first(self):
        model = self._model()
        bottom_out = np.arange(32, dtype=np.float32)
        pooled = np.arange(256, dtype=np.float32) + 1000
        joined = model.interact(bottom_out, pooled)
        assert np.array_equal(joined[:32], bottom_out)
        assert np.array_equal(joined[32:], pooled)

    def test_top_width_validated(self):
        tables = EmbeddingTableSet.uniform(2, 16, 8)
        bottom = MLP.from_widths(4, [8])
        bad_top = MLP.from_widths(99, [1])
        with pytest.raises(ValueError):
            DLRM("bad", tables, bottom, bad_top)

    def test_deterministic_given_seed(self):
        a = build_model(get_config("rmc1"), rows_per_table=64, seed=9)
        b = build_model(get_config("rmc1"), rows_per_table=64, seed=9)
        sparse = [[[3, 5]] * a.num_tables]
        dense = np.ones((1, a.dense_dim), dtype=np.float32)
        assert np.array_equal(a(dense, sparse), b(dense, sparse))


class TestNCF:
    def test_forward(self):
        model = NCF(num_users=32, num_items=32, dim=8, tower_widths=(16, 8))
        out = model.forward(None, [[[1], [2], [1], [2]]])
        assert out.shape == (1, 1)
        assert 0.0 < out[0, 0] < 1.0

    def test_single_lookup_enforced(self):
        model = NCF(num_users=16, num_items=16, dim=4, tower_widths=(8,))
        with pytest.raises(ValueError):
            model.forward_one(None, [[1, 2], [2], [1], [2]])

    def test_four_tables(self):
        model = NCF(num_users=16, num_items=16, dim=4, tower_widths=(8,))
        assert model.num_tables == 4
        assert model.fc_shapes_bottom() == []
        # tower + predict head
        assert len(model.fc_shapes_top()) == 2

    def test_gmf_contributes(self):
        # Different GMF inputs with identical MLP inputs must change output.
        model = NCF(num_users=16, num_items=16, dim=4, tower_widths=(8,))
        out1 = model.forward_one(None, [[0], [0], [5], [6]])
        out2 = model.forward_one(None, [[1], [2], [5], [6]])
        assert out1[0] != out2[0]


class TestWnD:
    def _model(self):
        tables = EmbeddingTableSet.uniform(4, 32, 8, seed=2)
        return WideAndDeep(tables, dense_dim=5, deep_widths=(16, 8))

    def test_forward(self):
        model = self._model()
        dense = np.ones((2, 5), dtype=np.float32)
        sparse = [[[i]] * 4 for i in range(2)]
        out = model.forward(dense, sparse)
        assert out.shape == (2, 1)
        assert np.all((out > 0) & (out < 1))

    def test_wide_path_contributes(self):
        model = self._model()
        sparse = [[0], [0], [0], [0]]
        out1 = model.forward_one(np.zeros(5), sparse)
        out2 = model.forward_one(np.ones(5) * 10, sparse)
        assert out1[0] != out2[0]

    def test_single_lookup_enforced(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.forward_one(np.zeros(5), [[0, 1], [0], [0], [0]])

    def test_table_count_enforced(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.forward_one(np.zeros(5), [[0]] * 3)


class TestConfigs:
    def test_table_iii_shapes(self):
        rmc1 = get_config("rmc1")
        assert rmc1.bottom_widths == (128, 64, 32)
        assert rmc1.top_widths == (256, 64, 1)
        assert rmc1.dim == 32 and rmc1.num_tables == 8
        assert rmc1.lookups_per_table == 80

        rmc2 = get_config("rmc2")
        assert rmc2.dim == 64 and rmc2.num_tables == 32
        assert rmc2.lookups_per_table == 120

        rmc3 = get_config("rmc3")
        assert rmc3.bottom_widths[0] == 2560
        assert rmc3.lookups_per_table == 20

    def test_mlp_sizes_match_table_iii(self):
        # Paper: 0.39 / 1.23 / 12.23 MB; our reading lands within ~5%.
        expected_mb = {"rmc1": 0.39, "rmc2": 1.23, "rmc3": 12.23}
        for key, paper_mb in expected_mb.items():
            model = build_model(get_config(key), rows_per_table=8)
            built_mb = model.mlp_weight_bytes / (1 << 20)
            assert built_mb == pytest.approx(paper_mb, rel=0.08)

    def test_mlp_domination_taxonomy(self):
        assert not get_config("rmc1").is_mlp_dominated
        assert not get_config("rmc2").is_mlp_dominated
        assert get_config("rmc3").is_mlp_dominated
        assert get_config("ncf").is_mlp_dominated
        assert get_config("wnd").is_mlp_dominated

    def test_paper_rows_at_30gb(self):
        rmc1 = get_config("rmc1")
        rows = rmc1.paper_rows_per_table()
        assert rows * rmc1.num_tables * rmc1.ev_size <= 30 * (1 << 30)
        assert rows > 10_000_000  # tens of millions of rows per table

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_config("rmc9")

    def test_build_all_kinds(self):
        for key in MODEL_CONFIGS:
            model = build_model(get_config(key), rows_per_table=16)
            assert model.name == get_config(key).name

    def test_lookups_per_inference(self):
        assert get_config("rmc1").lookups_per_inference == 640
        assert get_config("rmc2").lookups_per_inference == 3840
        assert get_config("rmc3").lookups_per_inference == 200

    @settings(max_examples=20, deadline=None)
    @given(rows=st.integers(min_value=2, max_value=64))
    def test_build_model_rows_respected(self, rows):
        model = build_model(get_config("rmc1"), rows_per_table=rows)
        assert model.tables[0].rows == rows
