"""Tests for the on-SSD embedding layout and the EV Translator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.layout import EmbeddingLayout
from repro.embedding.table import EmbeddingTableSet
from repro.embedding.translator import EVTranslator
from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry


def make_device(max_extent_pages=None):
    geo = SSDGeometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=32,
        pages_per_block=32,
    )
    return BlockDevice(SSDController(Simulator(), geo), max_extent_pages=max_extent_pages)


def build(max_extent_pages=None, num_tables=2, rows=100, dim=32):
    device = make_device(max_extent_pages)
    tables = EmbeddingTableSet.uniform(num_tables, rows, dim, seed=11)
    layout = EmbeddingLayout(device, tables)
    layout.create_all()
    return device, tables, layout


class TestLayout:
    def test_vectors_never_straddle_pages(self):
        _, tables, layout = build(dim=32)
        tl = layout.layout_for(0)
        for index in range(tables[0].rows):
            offset = tl.vector_file_offset(index)
            assert offset // 4096 == (offset + tables.ev_size - 1) // 4096

    def test_dense_packing_for_power_of_two(self):
        _, _, layout = build(dim=32)  # 128 B vectors, 32 per page
        tl = layout.layout_for(0)
        assert tl.slots_per_page == 32
        assert tl.vector_file_offset(31) == 31 * 128
        assert tl.vector_file_offset(32) == 4096

    def test_rows_written_correctly(self):
        device, tables, layout = build()
        tl = layout.layout_for(1)
        for index in [0, 31, 32, 99]:
            data = device.read_file(
                tl.handle.name, tl.vector_file_offset(index), tables.ev_size
            )
            assert data == tables[1].row_bytes(index)

    def test_oversized_vector_rejected(self):
        device = make_device()
        tables = EmbeddingTableSet.uniform(1, 10, dim=2048)  # 8 KB vector
        with pytest.raises(ValueError):
            EmbeddingLayout(device, tables)

    def test_extent_ranges_cover_all_indices_contiguously(self):
        _, tables, layout = build(max_extent_pages=1)
        for table_id in range(len(tables)):
            ranges = layout.layout_for(table_id).extent_ranges
            assert ranges[0].first_index == 0
            for a, b in zip(ranges, ranges[1:]):
                assert b.first_index == a.last_index + 1
            assert ranges[-1].last_index == tables[table_id].rows - 1

    def test_metadata_export(self):
        _, tables, layout = build()
        meta = layout.metadata()
        assert set(meta.keys()) == {0, 1}
        assert meta[0][0].start_lba == layout.layout_for(0).handle.extents[0].start_lba


class TestTranslator:
    def _translator(self, layout, tables):
        translator = EVTranslator(page_size=4096)
        for table_id in range(len(tables)):
            translator.register_table(
                table_id,
                layout.layout_for(table_id).extent_ranges,
                tables.ev_size,
                tables[table_id].rows,
            )
        return translator

    def test_translation_matches_layout(self):
        device, tables, layout = build()
        translator = self._translator(layout, tables)
        for table_id in range(len(tables)):
            for index in [0, 1, 50, 99]:
                read = translator.translate(table_id, index)
                assert read.device_offset == layout.device_offset(table_id, index)
                assert read.size == tables.ev_size

    def test_translation_with_fragmented_extents(self):
        device, tables, layout = build(max_extent_pages=1)
        translator = self._translator(layout, tables)
        for index in range(tables[0].rows):
            read = translator.translate(0, index)
            assert read.device_offset == layout.device_offset(0, index)

    def test_translated_reads_return_correct_vectors(self):
        device, tables, layout = build(max_extent_pages=2)
        translator = self._translator(layout, tables)
        for table_id, index in [(0, 7), (1, 64), (0, 99)]:
            read = translator.translate(table_id, index)
            data = device.controller.peek_logical(read.device_offset, read.size)
            restored = np.frombuffer(data, dtype=np.float32)
            assert np.array_equal(restored, tables[table_id].row(index))

    def test_unregistered_table_raises(self):
        translator = EVTranslator(page_size=4096)
        with pytest.raises(KeyError):
            translator.translate(0, 0)

    def test_out_of_range_index_raises(self):
        _, tables, layout = build()
        translator = self._translator(layout, tables)
        with pytest.raises(IndexError):
            translator.translate(0, tables[0].rows)

    def test_batch_translation(self):
        _, tables, layout = build()
        translator = self._translator(layout, tables)
        reads = translator.translate_batch(0, [1, 2, 3])
        assert [r.index for r in reads] == [1, 2, 3]

    def test_translation_cycles_linear(self):
        translator = EVTranslator(page_size=4096)
        assert translator.translation_cycles(80) == 80 * EVTranslator.CYCLES_PER_LOOKUP

    @settings(max_examples=50, deadline=None)
    @given(index=st.integers(min_value=0, max_value=99))
    def test_translation_roundtrip_property(self, index):
        device, tables, layout = build(max_extent_pages=3)
        translator = self._translator(layout, tables)
        read = translator.translate(1, index)
        data = device.controller.peek_logical(read.device_offset, read.size)
        assert np.array_equal(
            np.frombuffer(data, dtype=np.float32), tables[1].row(index)
        )
