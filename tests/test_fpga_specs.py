"""Validation of FPGA part capacities and engine settings."""

import pytest

from repro.fpga.specs import XC7A200T, XCVU9P, FPGAPart, FPGASettings


class TestFPGAPartValidation:
    def test_table_vi_parts_are_valid(self):
        # The module-level constants must pass their own validation.
        assert XCVU9P.luts > XC7A200T.luts
        assert XCVU9P.brams > XC7A200T.brams

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="brams"):
            FPGAPart("bad", luts=1000, ffs=1000, brams=0, dsps=10)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="luts"):
            FPGAPart("bad", luts=-1, ffs=1000, brams=10, dsps=10)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            FPGAPart("", luts=1, ffs=1, brams=1, dsps=1)


class TestFPGASettingsValidation:
    def test_defaults_are_valid(self):
        settings = FPGASettings()
        assert settings.cycle_ns == pytest.approx(5.0)
        assert settings.kmax == 16

    def test_zero_clock_rejected(self):
        with pytest.raises(ValueError, match="clock_hz"):
            FPGASettings(clock_hz=0)

    def test_zero_ii_rejected(self):
        with pytest.raises(ValueError, match="ii"):
            FPGASettings(ii=0)

    def test_unaligned_dram_width_rejected(self):
        with pytest.raises(ValueError, match="dram_width_bytes"):
            FPGASettings(dram_width_bytes=30)

    def test_negative_kmax_log2_rejected(self):
        with pytest.raises(ValueError, match="kmax_log2"):
            FPGASettings(kmax_log2=-1)

    def test_zero_mmio_width_rejected(self):
        with pytest.raises(ValueError, match="mmio_width_bytes"):
            FPGASettings(mmio_width_bytes=0)
