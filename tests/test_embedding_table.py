"""Tests for embedding tables and pooling operators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.embedding.pooling import (
    pool_mean,
    pool_sum,
    sls_all_tables,
    sls_batch,
    sparse_length_sum,
)
from repro.embedding.table import EmbeddingTable, EmbeddingTableSet


class TestEmbeddingTable:
    def test_shape_and_dtype(self):
        table = EmbeddingTable("t", rows=100, dim=32)
        assert table.data.shape == (100, 32)
        assert table.data.dtype == np.float32

    def test_deterministic_from_seed(self):
        a = EmbeddingTable("a", 50, 16, seed=7)
        b = EmbeddingTable("b", 50, 16, seed=7)
        assert np.array_equal(a.data, b.data)

    def test_different_seeds_differ(self):
        a = EmbeddingTable("a", 50, 16, seed=1)
        b = EmbeddingTable("b", 50, 16, seed=2)
        assert not np.array_equal(a.data, b.data)

    def test_ev_size_is_dim_times_4(self):
        assert EmbeddingTable("t", 10, 64).ev_size == 256

    def test_row_bytes_roundtrip(self):
        table = EmbeddingTable("t", 10, 8)
        restored = np.frombuffer(table.row_bytes(3), dtype=np.float32)
        assert np.array_equal(restored, table.row(3))

    def test_row_out_of_range(self):
        table = EmbeddingTable("t", 10, 8)
        with pytest.raises(IndexError):
            table.row(10)

    def test_explicit_data(self):
        data = np.ones((4, 2), dtype=np.float32)
        table = EmbeddingTable("t", 4, 2, data=data)
        assert np.array_equal(table.row(2), [1.0, 1.0])

    def test_explicit_data_shape_checked(self):
        with pytest.raises(ValueError):
            EmbeddingTable("t", 4, 2, data=np.ones((3, 2), dtype=np.float32))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            EmbeddingTable("t", 0, 8)


class TestEmbeddingTableSet:
    def test_uniform_construction(self):
        tables = EmbeddingTableSet.uniform(8, rows_per_table=100, dim=32)
        assert len(tables) == 8
        assert tables.dim == 32
        assert tables.ev_size == 128
        assert tables.total_bytes == 8 * 100 * 128

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTableSet(
                [EmbeddingTable("a", 10, 8), EmbeddingTable("b", 10, 16)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTableSet([])

    def test_tables_have_distinct_contents(self):
        tables = EmbeddingTableSet.uniform(2, 10, 8, seed=0)
        assert not np.array_equal(tables[0].data, tables[1].data)


class TestTableScaling:
    def test_scaling_record(self):
        from repro.embedding.table import scaling_vs_paper

        tables = EmbeddingTableSet.uniform(8, 1024, 32)
        scaling = scaling_vs_paper(tables)
        assert scaling.built_total_bytes == tables.total_bytes
        assert scaling.factor == pytest.approx(
            30 * (1 << 30) / tables.total_bytes
        )
        assert "scale-down" in str(scaling)


class TestPooling:
    def test_pool_sum_matches_numpy(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((20, 16)).astype(np.float32)
        assert np.allclose(pool_sum(vectors), vectors.sum(axis=0), atol=1e-5)

    def test_pool_sum_deterministic_order(self):
        vectors = np.array([[1e8], [1.0], [-1e8]], dtype=np.float32)
        # Left-to-right fp32: (1e8 + 1) - 1e8 == 0 exactly in fp32.
        assert pool_sum(vectors)[0] == np.float32(np.float32(1e8 + 1.0) - 1e8)

    def test_pool_mean(self):
        vectors = np.array([[2.0, 4.0], [4.0, 8.0]], dtype=np.float32)
        assert np.array_equal(pool_mean(vectors), [3.0, 6.0])

    def test_pool_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            pool_mean(np.zeros((0, 4), dtype=np.float32))

    def test_pool_sum_requires_2d(self):
        with pytest.raises(ValueError):
            pool_sum(np.zeros(4, dtype=np.float32))

    def test_sls_empty_indices_gives_zeros(self):
        table = EmbeddingTable("t", 10, 8)
        assert np.array_equal(sparse_length_sum(table, []), np.zeros(8))

    def test_sls_single_index_is_row(self):
        table = EmbeddingTable("t", 10, 8)
        assert np.array_equal(sparse_length_sum(table, [3]), table.row(3))

    @given(
        indices=st.lists(st.integers(min_value=0, max_value=49), min_size=1, max_size=40)
    )
    def test_sls_property_matches_gather_sum(self, indices):
        table = EmbeddingTable("t", 50, 8, seed=3)
        result = sparse_length_sum(table, indices)
        expected = np.zeros(8, dtype=np.float32)
        for i in indices:
            expected += table.row(i)
        assert np.array_equal(result, expected)

    def test_sls_all_tables_concatenates(self):
        tables = EmbeddingTableSet.uniform(3, 20, 4)
        result = sls_all_tables(tables, [[0, 1], [2], [3, 4, 5]])
        assert result.shape == (12,)
        assert np.array_equal(result[:4], sparse_length_sum(tables[0], [0, 1]))

    def test_sls_all_tables_count_mismatch(self):
        tables = EmbeddingTableSet.uniform(2, 20, 4)
        with pytest.raises(ValueError):
            sls_all_tables(tables, [[0]])

    def test_sls_batch_shape(self):
        tables = EmbeddingTableSet.uniform(2, 20, 4)
        batch = [[[0], [1]], [[2], [3]], [[4, 5], [6, 7]]]
        assert sls_batch(tables, batch).shape == (3, 8)
