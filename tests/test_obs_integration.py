"""End-to-end observability: CLI round-trip, pipeline/serving spans,
host-pipeline trace, and I/O snapshot windows."""

import json

import pytest

from repro.core.pipeline_sim import PipelineSimulator
from repro.fpga.compose import StageTimes
from repro.host.runtime import HostPipeline
from repro.host.serving import ServingSimulator
from repro.obs import MetricsRegistry, Tracer
from repro.ssd.stats import IOSnapshot, IOStatistics
from tools.check_trace import (
    check_metrics,
    check_profile,
    check_trace,
    cross_check,
)


class TestCLIRoundTrip:
    def test_run_writes_valid_trace_and_metrics(self, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        exit_code = main([
            "run", "rmc1", "--backend", "rm-ssd",
            "--requests", "2", "--rows", "64", "--no-compute",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert exit_code == 0
        required = [
            "request", "translate", "flash_read", "ev_sum",
            "bottom_mlp", "top_mlp",
        ]
        assert check_trace(str(trace_path), require=required) == []
        assert check_metrics(str(metrics_path)) == []
        metrics = json.loads(metrics_path.read_text())
        latency = metrics["histograms"]["request_latency_ns"]
        assert latency["count"] == 2
        assert latency["p99_ns"] >= latency["p50_ns"] > 0
        assert metrics["snapshots"]["io"]["flash_vector_reads"] > 0
        assert metrics["counters"]["run.inferences"] > 0

    def test_check_trace_flags_problems(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
                {"name": "mismatch", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1},
            ]
        }))
        problems = check_trace(str(bad), require=["missing_span"])
        assert problems
        assert any("missing_span" in p for p in problems)


class TestPipelineSpans:
    def test_queue_span_and_queue_ns(self):
        tracer = Tracer()
        simulator = PipelineSimulator(
            emb_ns=100.0, bot_ns=50.0, top_ns=30.0, tracer=tracer
        )
        # Back-to-back arrivals: batch 1 arrives at t=10 but the emb
        # server is busy until t=100, so it queues for 90 ns.
        result = simulator.run(batches=2, arrival_times_ns=[0.0, 10.0])
        second = result.records[1]
        assert second.queue_ns == pytest.approx(90.0)
        queue_spans = tracer.spans_named("queue")
        assert len(queue_spans) == 1
        assert queue_spans[0].duration_ns == pytest.approx(90.0)
        # Overlapping batches land on distinct serve.req lanes.
        batch_tracks = {s.track for s in tracer.spans_named("batch")}
        assert batch_tracks == {"serve.req", "serve.req[1]"}
        # bottom overlaps embedding, on its own lane group.
        assert {s.track for s in tracer.spans_named("bot")} <= {
            "serve.bot", "serve.bot[1]"
        }

    def test_saturated_pipeline_exports_cleanly(self, tmp_path):
        tracer = Tracer()
        simulator = PipelineSimulator(
            emb_ns=100.0, bot_ns=80.0, top_ns=60.0, tracer=tracer
        )
        simulator.run(batches=5)
        path = tracer.export_chrome(str(tmp_path / "pipe.json"))
        assert check_trace(path, require=["batch", "emb", "top", "bot"]) == []

    def test_disabled_tracer_records_nothing(self):
        simulator = PipelineSimulator(emb_ns=10.0, bot_ns=5.0, top_ns=5.0)
        result = simulator.run(batches=3)
        assert result.batches == 3
        assert not simulator.tracer.enabled


class TestServingMetrics:
    def test_offered_load_fills_registry_and_queue_stat(self):
        metrics = MetricsRegistry()
        times = StageTimes(temb=100, tbot=60, ttop=40, nbatch=1, flash_cycles=50)
        serving = ServingSimulator(times, cycle_ns=5.0, metrics=metrics)
        point = serving.offered_load(
            qps=0.8 * serving.saturation_qps, queries=50
        )
        assert point.mean_queue_ns >= 0.0
        data = metrics.as_dict()
        assert data["histograms"]["serving.latency_ns"]["count"] == 50
        assert data["histograms"]["serving.queue_ns"]["count"] == 50
        assert data["counters"]["serving.batches"] == 50
        assert data["histograms"]["serving.latency_ns"]["p50_ns"] > 0


class TestHostPipelineTrace:
    def test_pipelined_spans_match_total(self):
        pipeline = HostPipeline(pipelined=True)
        pipeline.extend([(10.0, 50.0, 5.0)] * 3)
        tracer = Tracer()
        end = pipeline.emit_trace(tracer)
        assert end == pytest.approx(pipeline.total_ns())
        assert {s.track for s in tracer.spans} == {
            "host.send", "host.device", "host.recv"
        }
        # Pre-send: request 1's send starts as soon as send frees (t=10),
        # while the device is still busy with request 0.
        sends = tracer.spans_named("send")
        assert sends[1].start_ns == pytest.approx(10.0)

    def test_serial_spans_match_total(self):
        pipeline = HostPipeline(pipelined=False)
        pipeline.extend([(10.0, 50.0, 5.0)] * 3)
        tracer = Tracer()
        end = pipeline.emit_trace(tracer)
        assert end == pytest.approx(pipeline.total_ns())
        # Serial: request 1's send waits for request 0's receive.
        sends = tracer.spans_named("send")
        assert sends[1].start_ns == pytest.approx(65.0)

    def test_base_offset_shifts_everything(self):
        pipeline = HostPipeline()
        pipeline.add(1.0, 2.0, 3.0)
        tracer = Tracer()
        end = pipeline.emit_trace(tracer, base_ns=100.0)
        assert tracer.spans[0].start_ns == pytest.approx(100.0)
        assert end == pytest.approx(106.0)


def make_profile(**overrides):
    """Minimal valid rmssd-profile/v1 document for mutation tests."""
    profile = {
        "schema": "rmssd-profile/v1",
        "meta": {},
        "elapsed_ns": 100.0,
        "resources": {
            "ftl-mux": {
                "kind": "ftl",
                "busy_ns": 30.0,
                "utilization": 0.3,
                "jobs": 2,
                "busy_intervals": [[0.0, 10.0], [20.0, 40.0]],
                "intervals_omitted": 0,
            },
        },
        "channels": {},
        "bottleneck": {
            "bottleneck_stage": "emb",
            "slack_ns": {"emb": 0.0, "bot": 1.0, "top": 1.0, "io": 1.0},
            "invariant": {
                "name": "embedding-stage-bottleneck",
                "holds": True,
            },
            "warnings": [],
        },
    }
    profile.update(overrides)
    return profile


def write_json(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestProfileValidation:
    def test_cli_profile_writes_valid_profile_and_trace(self, tmp_path):
        from repro.cli import main

        profile_path = tmp_path / "profile.json"
        trace_path = tmp_path / "trace.json"
        exit_code = main([
            "profile", "rmc1", "--backend", "rm-ssd",
            "--requests", "2", "--batch", "1", "--rows", "64",
            "--profile-out", str(profile_path),
            "--trace-out", str(trace_path),
        ])
        assert exit_code == 0
        assert check_profile(str(profile_path)) == []
        assert cross_check(str(trace_path), str(profile_path)) == []
        profile = json.loads(profile_path.read_text())
        assert profile["bottleneck"]["bottleneck_stage"] == "emb"
        assert profile["meta"]["model"] == "rmc1"

    def test_valid_synthetic_profile_passes(self, tmp_path):
        path = write_json(tmp_path, "p.json", make_profile())
        assert check_profile(path) == []

    def test_wrong_schema_rejected(self, tmp_path):
        path = write_json(
            tmp_path, "p.json", make_profile(schema="rmssd-trace/v1")
        )
        assert any("schema" in p for p in check_profile(path))

    def test_utilization_above_one_flagged(self, tmp_path):
        profile = make_profile()
        profile["resources"]["ftl-mux"]["utilization"] = 1.5
        path = write_json(tmp_path, "p.json", profile)
        assert any("outside [0, 1]" in p for p in check_profile(path))

    def test_unsorted_timeline_flagged(self, tmp_path):
        profile = make_profile()
        profile["resources"]["ftl-mux"]["busy_intervals"] = [
            [20.0, 40.0], [0.0, 10.0],
        ]
        path = write_json(tmp_path, "p.json", profile)
        assert any("sorted" in p for p in check_profile(path))

    def test_timeline_busy_mismatch_flagged(self, tmp_path):
        profile = make_profile()
        profile["resources"]["ftl-mux"]["busy_ns"] = 99.0
        profile["resources"]["ftl-mux"]["utilization"] = 0.99
        path = write_json(tmp_path, "p.json", profile)
        assert any("timeline covers" in p for p in check_profile(path))

    def test_violated_invariant_needs_warning(self, tmp_path):
        profile = make_profile()
        profile["bottleneck"]["bottleneck_stage"] = "top"
        profile["bottleneck"]["invariant"]["holds"] = False
        path = write_json(tmp_path, "p.json", profile)
        assert any("no structured warning" in p for p in check_profile(path))
        profile["bottleneck"]["warnings"] = [
            {"type": "mlp-dominates-embedding", "stage": "top"}
        ]
        path = write_json(tmp_path, "p2.json", profile)
        assert check_profile(path) == []

    @staticmethod
    def trace_with_ftl_span(tmp_path, begin_us, end_us):
        return write_json(tmp_path, "t.json", {"traceEvents": [
            {"name": "ftl", "ph": "B", "ts": begin_us, "pid": 1, "tid": 1},
            {"name": "ftl", "ph": "E", "ts": end_us, "pid": 1, "tid": 1},
        ]})

    def test_cross_check_contained_intervals_pass(self, tmp_path):
        # One ftl span covering [0, 50000] ns contains both profile
        # busy intervals of ftl-mux.
        trace = self.trace_with_ftl_span(tmp_path, 0.0, 50.0)
        profile = write_json(tmp_path, "p.json", make_profile())
        assert cross_check(trace, profile) == []

    def test_cross_check_flags_uncovered_busy_time(self, tmp_path):
        trace = self.trace_with_ftl_span(tmp_path, 0.0, 0.015)
        profile = write_json(tmp_path, "p.json", make_profile())
        problems = cross_check(trace, profile)
        assert any("outside the 'ftl' spans" in p for p in problems)

    def test_cross_check_flags_missing_span(self, tmp_path):
        trace = write_json(tmp_path, "t.json", {"traceEvents": []})
        profile = write_json(tmp_path, "p.json", make_profile())
        problems = cross_check(trace, profile)
        assert any("never emitted" in p for p in problems)

    def test_cross_check_needs_overlap(self, tmp_path):
        trace = self.trace_with_ftl_span(tmp_path, 0.0, 50.0)
        profile = make_profile()
        # Only unmapped resources: nothing to cross-check is itself
        # a problem (the check would silently pass forever).
        profile["resources"] = {
            "gemm16x16": {
                "kind": "mlp", "busy_ns": 1.0, "utilization": 0.01,
                "jobs": 1, "busy_intervals": [[0.0, 1.0]],
                "intervals_omitted": 0,
            }
        }
        path = write_json(tmp_path, "p.json", profile)
        assert any("no overlapping" in p for p in cross_check(trace, path))


class TestIOSnapshots:
    def test_snapshot_is_frozen_copy(self):
        stats = IOStatistics()
        stats.record_page_read(4096)
        snap = stats.snapshot()
        assert isinstance(snap, IOSnapshot)
        assert snap.flash_page_reads == 1
        stats.record_page_read(4096)
        assert snap.flash_page_reads == 1  # unaffected by later traffic
        with pytest.raises(AttributeError):
            snap.flash_page_reads = 5

    def test_diff_measures_a_window(self):
        stats = IOStatistics()
        stats.record_host_transfer(read_bytes=100)
        before = stats.snapshot()
        stats.record_host_transfer(read_bytes=300)
        stats.record_useful(60)
        window = stats.diff(before)
        assert window.host_read_bytes == 300
        assert window.useful_bytes == 60
        assert window.read_amplification == pytest.approx(5.0)

    def test_window_supports_reduction_factor(self):
        a, b = IOStatistics(), IOStatistics()
        a.record_host_transfer(read_bytes=1000)
        b.record_host_transfer(read_bytes=10)
        assert b.snapshot().reduction_factor_vs(a.snapshot()) == 100.0
