"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "rmc9"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "rmc1"])
        assert args.backend == "rm-ssd"
        assert args.batch == 1


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "RMC1" in out and "WnD" in out

    def test_search(self, capsys):
        assert main(["search", "rmc1"]) == 0
        out = capsys.readouterr().out
        assert "4x2" in out
        assert "XC7A200T" in out

    def test_search_with_budget(self, capsys):
        assert main(["search", "rmc3", "--bram-budget", "280"]) == 0
        out = capsys.readouterr().out
        assert "dram" in out

    def test_run_each_backend_smoke(self, capsys):
        for backend in (
            "dram", "emb-vectorsum", "recssd", "rm-ssd-naive",
            "ssd-s", "ssd-m", "emb-mmio", "emb-pagesum",
        ):
            code = main(
                ["run", "rmc1", "--backend", backend, "--requests", "2",
                 "--rows", "512", "--no-compute"]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "QPS" in out

    def test_run_with_compute(self, capsys):
        assert main(["run", "rmc1", "--requests", "1", "--rows", "256"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "rmc1", "--backends", "rm-ssd,dram",
             "--batches", "1,4", "--requests", "2", "--rows", "512"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RM-SSD" in out and "DRAM" in out

    def test_advise(self, capsys):
        assert main(["advise", "rmc3"]) == 0
        out = capsys.readouterr().out
        assert "recommendation" in out
        assert "RMC3" in out

    def test_sla(self, capsys):
        code = main(["sla", "rmc1", "--rows", "256", "--queries", "40",
                     "--sla-ms", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation" in out
        assert "max load" in out

    def test_criteo_gen_and_run(self, capsys, tmp_path):
        tsv = str(tmp_path / "c.tsv")
        assert main(["criteo-gen", tsv, "--rows", "80"]) == 0
        assert "wrote 80" in capsys.readouterr().out
        code = main(["criteo-run", tsv, "ncf", "--batch", "4",
                     "--rows", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_trace_stats(self, capsys):
        code = main(
            ["trace-stats", "--rows", "5000", "--requests", "50",
             "--lookups", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lookups=" in out
        assert "occurrence" in out

    def test_report(self, capsys, tmp_path):
        ts = tmp_path / "ts.json"
        prom = tmp_path / "prom.txt"
        code = main([
            "report", "rmc1", "--rows", "64", "--queries", "60",
            "--window-ms", "2", "--timeseries-out", str(ts),
            "--prom-out", str(prom),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-window dashboard" in out
        assert "run aggregate" in out
        assert "alert timeline" in out
        assert "stream tails" in out
        import json

        document = json.loads(ts.read_text())
        assert document["schema"] == "rmssd-timeseries/v1"
        assert "serving.latency_ns" in document["series"]
        assert "slo" in document
        assert "utilization" in document
        assert "rmssd_serving_batches_total" in prom.read_text()

    def test_report_overload_fires_alerts(self, capsys, tmp_path):
        code = main([
            "report", "rmc1", "--rows", "64", "--queries", "300",
            "--load", "1.02", "--window-ms", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[page]" in out or "[ticket]" in out

    def test_run_timeseries_and_prom_out(self, capsys, tmp_path):
        ts = tmp_path / "ts.json"
        prom = tmp_path / "prom.txt"
        code = main([
            "run", "rmc1", "--backend", "rm-ssd", "--requests", "2",
            "--rows", "64", "--no-compute",
            "--timeseries-out", str(ts), "--prom-out", str(prom),
        ])
        assert code == 0
        import json

        document = json.loads(ts.read_text())
        assert document["schema"] == "rmssd-timeseries/v1"
        assert document["series"], "device run produced no windowed series"
        assert "rmssd_" in prom.read_text()

    def test_sla_timeseries_and_worst_window(self, capsys, tmp_path):
        ts = tmp_path / "ts.json"
        code = main([
            "sla", "rmc1", "--rows", "256", "--queries", "40",
            "--sla-ms", "20", "--timeseries-out", str(ts),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "worst window" in out
        assert "timeseries:" in out
        import json

        assert json.loads(ts.read_text())["schema"] == "rmssd-timeseries/v1"
