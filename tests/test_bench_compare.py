"""Tests for the benchmark-regression gate (tools/bench_compare).

Synthetic payloads exercise every tolerance documented in the tool's
docstring; the committed ``BENCH_*.json`` baselines must pass both an
identity diff and their own self-check (``tools/check.sh`` runs the
same gate plus an injected-regression canary).
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_compare import (  # noqa: E402
    Regression,
    compare,
    detect_kind,
    main,
    self_check,
)


def fastpath_payload(**overrides):
    payload = {
        "model": "RMC2",
        "samples": 256,
        "vectors_read": 983040,
        "simulated_ns": 123456789.0,
        "min_speedup": 10.0,
        "speedup": 15.9,
        "bitwise_equal": True,
        "des_wall_s": 12.5,
        "fast_wall_s": 0.8,
    }
    payload.update(overrides)
    return payload


def sweep_payload(**overrides):
    payload = {
        "model": "rmc2",
        "queries": 200,
        "fractions": [0.2, 0.4, 0.6, 0.8, 0.9, 0.95],
        "sweep_points": 6,
        "repeats": 3,
        "min_speedup": 10.0,
        "speedup": 13.4,
        "bitwise_equal": True,
        "des_wall_s": 0.035,
        "fast_wall_s": 0.0026,
        "wall_s": 10.7,
        "max_wall_s": 90.0,
    }
    payload.update(overrides)
    return payload


def vcache_payload(**overrides):
    payload = {
        "ks": [0.0, 1.0, 2.0],
        "policy": "lru",
        "capacity_rule": "sqrt",
        "rows_per_table": 512,
        "hit_ratios": {"rmc1": [0.90, 0.60, 0.40]},
        "qps": {
            "rmc1/RM-SSD": [100.0, 100.0, 100.0],
            "rmc1/RM-SSD+cache": [400.0, 220.0, 150.0],
            "rmc1/RecSSD": [80.0, 80.0, 80.0],
        },
    }
    payload.update(overrides)
    return payload


def autoscale_payload(**overrides):
    payload = {
        "model": "rmc1",
        "arrivals": "flash-crowd",
        "queries": 398,
        "balancer": "jsq",
        "sla_ms": 40.0,
        "quantile": 99.0,
        "alert_threshold_ms": 10.0,
        "window_ms": 2.0,
        "burst_factor": 4.0,
        "initial_replicas": 1,
        "max_replicas": 6,
        "scale_up_step": 2,
        "fixed": {"p99_ms": 208.25, "meets_sla": False, "final_replicas": 1},
        "autoscaled": {
            "p99_ms": 33.37,
            "meets_sla": True,
            "scale_ups": 1,
            "scale_downs": 2,
            "final_replicas": 1,
        },
        "bitwise_equal": True,
        "wall_s": 0.2,
    }
    payload.update(overrides)
    return payload


def embedded_explain(p99_ns=7e8, queue_ns=6.5e8):
    mean = {
        "dispatch_wait_ns": 0.0,
        "queue_ns": queue_ns,
        "emb_ns": 8e6,
        "bot_ns": 0.0,
        "top_ns": 2e6,
    }
    mean["latency_ns"] = sum(mean.values())
    return {
        "schema": "rmssd-explain/v1",
        "quantiles": [
            {
                "q": 99.0,
                "latency_ns": p99_ns,
                "tail": {
                    "count": 3,
                    "mean_ns": mean,
                    "blame": {},
                    "queue_share_by_replica": {"0": 0.3, "1": 0.7},
                },
                "exemplars": [],
            }
        ],
        "requests": {"count": 500},
    }


def attribution_payload(**overrides):
    payload = {
        "model": "rmc2",
        "arrivals": "flash-crowd",
        "replicas": 2,
        "balancer": "jsq",
        "burst_factor": 3.0,
        "quantile": 99.0,
        "loads": [0.05, 0.5, 0.85],
        "queries": [26, 319, 532],
        "p99_ms": [6.9, 271.5, 708.7],
        "queue_share_p99": [0.0, 0.97, 0.99],
        "service_share_p99": [1.0, 0.03, 0.01],
        "bitwise_equal": True,
        "explain": embedded_explain(),
        "wall_s": 0.8,
    }
    payload.update(overrides)
    return payload


class TestDetectKind:
    def test_detects_all_kinds(self):
        assert detect_kind(fastpath_payload()) == "fastpath"
        # sweep carries speedup + bitwise_equal too: sweep_points must
        # win the detection race over fastpath.
        assert detect_kind(sweep_payload()) == "sweep"
        assert detect_kind(vcache_payload()) == "vcache"
        # autoscale carries bitwise_equal too: autoscaled must win.
        assert detect_kind(autoscale_payload()) == "autoscale"
        # attribution carries bitwise_equal too: queue_share_p99 wins.
        assert detect_kind(attribution_payload()) == "attribution"

    def test_unknown_payload_raises(self):
        with pytest.raises(Regression, match="unrecognized"):
            detect_kind({"something": 1})

    def test_kind_mismatch_is_a_failure(self):
        failures = compare(fastpath_payload(), vcache_payload())
        assert failures == [
            "payload kinds differ: baseline fastpath, fresh vcache"
        ]


class TestCompareFastpath:
    def test_identity_passes(self):
        assert compare(fastpath_payload(), fastpath_payload()) == []

    def test_wall_clock_drift_is_ignored(self):
        fresh = fastpath_payload(des_wall_s=99.0, fast_wall_s=9.0, speedup=11.0)
        assert compare(fastpath_payload(), fresh) == []

    def test_configuration_drift_is_exact(self):
        failures = compare(fastpath_payload(), fastpath_payload(samples=255))
        assert any("samples" in failure for failure in failures)

    def test_simulated_time_drift_is_exact(self):
        fresh = fastpath_payload(simulated_ns=123456790.0)
        failures = compare(fastpath_payload(), fresh)
        assert any("simulated_ns" in failure for failure in failures)

    def test_bitwise_divergence_flagged(self):
        failures = compare(
            fastpath_payload(), fastpath_payload(bitwise_equal=False)
        )
        assert any("bitwise" in failure for failure in failures)

    def test_speedup_below_floor_flagged(self):
        failures = compare(fastpath_payload(), fastpath_payload(speedup=9.9))
        assert any("floor" in failure for failure in failures)

    def test_missing_metric_flagged(self):
        fresh = fastpath_payload()
        del fresh["vectors_read"]
        with pytest.raises(Regression, match="missing"):
            compare(fastpath_payload(), fresh)


class TestCompareSweep:
    def test_identity_passes(self):
        assert compare(sweep_payload(), sweep_payload()) == []

    def test_wall_clock_drift_within_budget_is_ignored(self):
        fresh = sweep_payload(
            des_wall_s=0.5, fast_wall_s=0.04, speedup=12.5, wall_s=40.0
        )
        assert compare(sweep_payload(), fresh) == []

    def test_configuration_drift_is_exact(self):
        failures = compare(sweep_payload(), sweep_payload(queries=100))
        assert any("queries" in failure for failure in failures)
        failures = compare(
            sweep_payload(), sweep_payload(fractions=[0.2, 0.4])
        )
        assert any("fractions" in failure for failure in failures)

    def test_bitwise_divergence_flagged(self):
        failures = compare(sweep_payload(), sweep_payload(bitwise_equal=False))
        assert any("bitwise" in failure for failure in failures)

    def test_speedup_below_floor_flagged(self):
        failures = compare(sweep_payload(), sweep_payload(speedup=9.9))
        assert any("floor" in failure for failure in failures)

    def test_blown_wall_budget_flagged(self):
        failures = compare(sweep_payload(), sweep_payload(wall_s=180.0))
        assert any("budget" in failure for failure in failures)

    def test_missing_wall_metric_flagged(self):
        fresh = sweep_payload()
        del fresh["wall_s"]
        with pytest.raises(Regression, match="missing"):
            compare(sweep_payload(), fresh)


class TestCompareVcache:
    def test_identity_passes(self):
        assert compare(vcache_payload(), vcache_payload()) == []

    def test_qps_within_tolerance_passes(self):
        fresh = vcache_payload()
        fresh["qps"]["rmc1/RM-SSD+cache"] = [395.0, 218.0, 149.0]  # < 2% down
        assert compare(vcache_payload(), fresh) == []

    def test_qps_regression_flagged_with_index(self):
        fresh = vcache_payload()
        fresh["qps"]["rmc1/RM-SSD+cache"] = [200.0, 220.0, 150.0]
        failures = compare(vcache_payload(), fresh)
        assert len(failures) == 1
        assert "qps.rmc1/RM-SSD+cache[0]" in failures[0]

    def test_hit_ratio_within_tolerance_passes(self):
        fresh = vcache_payload()
        fresh["hit_ratios"]["rmc1"] = [0.895, 0.595, 0.395]
        assert compare(vcache_payload(), fresh) == []

    def test_hit_ratio_regression_flagged(self):
        fresh = vcache_payload()
        fresh["hit_ratios"]["rmc1"] = [0.90, 0.40, 0.40]
        failures = compare(vcache_payload(), fresh)
        assert len(failures) == 1
        assert "hit_ratios.rmc1[1]" in failures[0]

    def test_missing_series_flagged(self):
        fresh = vcache_payload()
        del fresh["qps"]["rmc1/RecSSD"]
        failures = compare(vcache_payload(), fresh)
        assert any("rmc1/RecSSD: series is missing" in f for f in failures)

    def test_point_count_mismatch_flagged(self):
        fresh = vcache_payload()
        fresh["qps"]["rmc1/RM-SSD"] = [100.0, 100.0]
        failures = compare(vcache_payload(), fresh)
        assert any("2 points vs 3" in failure for failure in failures)

    def test_configuration_drift_is_exact(self):
        failures = compare(vcache_payload(), vcache_payload(policy="lfu"))
        assert any("policy" in failure for failure in failures)


class TestCompareAutoscale:
    def test_identity_passes(self):
        assert compare(autoscale_payload(), autoscale_payload()) == []

    def test_wall_clock_drift_is_ignored(self):
        assert compare(autoscale_payload(), autoscale_payload(wall_s=9.0)) == []

    def test_configuration_drift_is_exact(self):
        failures = compare(autoscale_payload(), autoscale_payload(sla_ms=50.0))
        assert any("sla_ms" in failure for failure in failures)
        failures = compare(
            autoscale_payload(), autoscale_payload(max_replicas=8)
        )
        assert any("max_replicas" in failure for failure in failures)

    def test_outcome_drift_is_exact(self):
        fresh = autoscale_payload()
        fresh["autoscaled"] = dict(fresh["autoscaled"], p99_ms=34.0)
        failures = compare(autoscale_payload(), fresh)
        assert any("autoscaled" in failure for failure in failures)

    def test_bitwise_divergence_flagged(self):
        failures = compare(
            autoscale_payload(), autoscale_payload(bitwise_equal=False)
        )
        assert any("bitwise" in failure for failure in failures)

    def test_missing_metric_flagged(self):
        fresh = autoscale_payload()
        del fresh["fixed"]
        with pytest.raises(Regression, match="missing"):
            compare(autoscale_payload(), fresh)


class TestCompareAttribution:
    def test_identity_passes(self):
        assert compare(attribution_payload(), attribution_payload()) == []

    def test_wall_clock_drift_is_ignored(self):
        fresh = attribution_payload(wall_s=9.0)
        assert compare(attribution_payload(), fresh) == []

    def test_configuration_drift_is_exact(self):
        fresh = attribution_payload(loads=[0.05, 0.5, 0.9])
        failures = compare(attribution_payload(), fresh)
        assert any("loads" in failure for failure in failures)

    def test_blame_share_drift_is_exact(self):
        fresh = attribution_payload(queue_share_p99=[0.0, 0.97, 0.995])
        failures = compare(attribution_payload(), fresh)
        assert any("queue_share_p99" in failure for failure in failures)

    def test_bitwise_divergence_flagged(self):
        failures = compare(
            attribution_payload(), attribution_payload(bitwise_equal=False)
        )
        assert any("bitwise" in failure for failure in failures)

    def test_missing_metric_flagged(self):
        fresh = attribution_payload()
        del fresh["p99_ms"]
        with pytest.raises(Regression, match="missing"):
            compare(attribution_payload(), fresh)


class TestSelfCheck:
    def test_good_payloads_pass(self):
        assert self_check(fastpath_payload()) == []
        assert self_check(sweep_payload()) == []
        assert self_check(vcache_payload()) == []
        assert self_check(autoscale_payload()) == []
        assert self_check(attribution_payload()) == []

    def test_autoscale_lost_sla_flagged(self):
        bad = autoscale_payload()
        bad["autoscaled"] = dict(
            bad["autoscaled"], p99_ms=45.0, meets_sla=False
        )
        failures = self_check(bad)
        assert any("lost the SLA" in failure for failure in failures)
        assert any("exceeds the SLA" in failure for failure in failures)

    def test_autoscale_baseline_within_sla_flagged(self):
        bad = autoscale_payload()
        bad["fixed"] = dict(bad["fixed"], p99_ms=30.0, meets_sla=True)
        failures = self_check(bad)
        assert any("no longer violates" in failure for failure in failures)
        # 33.37 >= 30.0: the controller must also beat the baseline.
        assert any("no better" in failure for failure in failures)

    def test_autoscale_no_scaling_flagged(self):
        bad = autoscale_payload()
        bad["autoscaled"] = dict(
            bad["autoscaled"], scale_ups=0, scale_downs=0
        )
        failures = self_check(bad)
        assert any("scale-out" in failure for failure in failures)
        assert any("drained" in failure for failure in failures)

    def test_autoscale_loose_alerting_and_divergence_flagged(self):
        bad = autoscale_payload(
            alert_threshold_ms=50.0, bitwise_equal=False
        )
        failures = self_check(bad)
        assert any("looser" in failure for failure in failures)
        assert any("bitwise" in failure for failure in failures)

    def test_sweep_invariants_flagged(self):
        failures = self_check(
            sweep_payload(bitwise_equal=False, speedup=2.0, wall_s=200.0)
        )
        assert any("bitwise" in failure for failure in failures)
        assert any("floor" in failure for failure in failures)
        assert any("budget" in failure for failure in failures)

    def test_sweep_point_count_mismatch_flagged(self):
        failures = self_check(sweep_payload(sweep_points=4))
        assert any("sweep_points" in failure for failure in failures)

    def test_fastpath_divergence_and_empty_run_flagged(self):
        failures = self_check(
            fastpath_payload(bitwise_equal=False, vectors_read=0)
        )
        assert len(failures) == 2

    def test_rising_hit_ratio_flagged(self):
        # Colder traces cannot hit more often.
        bad = vcache_payload(hit_ratios={"rmc1": [0.40, 0.60, 0.90]})
        failures = self_check(bad)
        assert any("rises" in failure for failure in failures)

    def test_non_flat_stock_qps_flagged(self):
        bad = vcache_payload()
        bad["qps"]["rmc1/RM-SSD"] = [100.0, 150.0, 100.0]
        failures = self_check(bad)
        assert any("not flat" in failure for failure in failures)

    def test_cache_slower_than_stock_flagged(self):
        bad = vcache_payload()
        bad["qps"]["rmc1/RM-SSD+cache"] = [400.0, 220.0, 90.0]
        failures = self_check(bad)
        assert any("slower than stock" in failure for failure in failures)

    def test_non_monotone_cached_qps_flagged(self):
        bad = vcache_payload()
        bad["qps"]["rmc1/RM-SSD+cache"] = [150.0, 220.0, 400.0]
        failures = self_check(bad)
        assert any("monotone" in failure for failure in failures)

    def test_attribution_blame_never_shifting_flagged(self):
        bad = attribution_payload(
            queue_share_p99=[0.9, 0.5, 0.2],
            service_share_p99=[0.1, 0.5, 0.8],
        )
        failures = self_check(bad)
        assert any("never shifted" in failure for failure in failures)

    def test_attribution_share_partition_violations_flagged(self):
        bad = attribution_payload(
            queue_share_p99=[0.0, 0.97, 1.2],
            service_share_p99=[1.0, 0.3, 0.01],
        )
        failures = self_check(bad)
        assert any("outside [0, 1]" in failure for failure in failures)
        assert any("partition" in failure for failure in failures)

    def test_attribution_unsorted_loads_flagged(self):
        failures = self_check(attribution_payload(loads=[0.5, 0.05, 0.85]))
        assert any("increasing" in failure for failure in failures)

    def test_attribution_point_count_mismatch_flagged(self):
        failures = self_check(attribution_payload(p99_ms=[6.9, 271.5]))
        assert any("expected 3 points" in failure for failure in failures)

    def test_attribution_wrong_embedded_schema_flagged(self):
        failures = self_check(
            attribution_payload(explain={"schema": "rmssd-profile/v1"})
        )
        assert any("rmssd-explain/v1" in failure for failure in failures)


class TestMainAndCommittedBaselines:
    @staticmethod
    def dump(tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identity_diff_exits_zero(self, tmp_path, capsys):
        base = self.dump(tmp_path, "base.json", vcache_payload())
        assert main(["--baseline", base, "--fresh", base]) == 0
        assert capsys.readouterr().out.startswith("ok")

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        base = self.dump(tmp_path, "base.json", vcache_payload())
        regressed = vcache_payload()
        regressed["qps"]["rmc1/RM-SSD+cache"][0] *= 0.5
        fresh = self.dump(tmp_path, "fresh.json", regressed)
        assert main(["--baseline", base, "--fresh", fresh]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_self_check_mode_exit_codes(self, tmp_path, capsys):
        good = self.dump(tmp_path, "good.json", fastpath_payload())
        bad = self.dump(
            tmp_path, "bad.json", fastpath_payload(bitwise_equal=False)
        )
        assert main(["--self-check", good]) == 0
        assert main(["--self-check", good, bad]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_regression_with_embedded_explain_is_attributed(
        self, tmp_path, capsys
    ):
        base = self.dump(tmp_path, "base.json", attribution_payload())
        regressed = attribution_payload(
            p99_ms=[6.9, 271.5, 1063.0],
            explain=embedded_explain(p99_ns=1063e6, queue_ns=1004e6),
        )
        fresh = self.dump(tmp_path, "fresh.json", regressed)
        assert main(["--baseline", base, "--fresh", fresh]) == 1
        out = capsys.readouterr().out
        assert "p99_ms" in out
        # The gate prints the regression explainer's attribution: the
        # stage (queue) and the replica carrying the queueing.
        assert "explain: p99 +363.00 ms" in out
        assert "100% queue" in out
        assert "replica 1" in out

    def test_committed_baselines_self_consistent(self):
        for name in (
            "BENCH_fastpath.json", "BENCH_sweep.json", "BENCH_vcache.json",
            "BENCH_autoscale.json", "BENCH_attribution.json",
        ):
            with open(REPO_ROOT / name) as handle:
                payload = json.load(handle)
            assert self_check(payload) == [], name
            assert compare(payload, payload) == [], name
