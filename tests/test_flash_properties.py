"""Property-based tests for the flash-array DES.

Invariants that must hold for any request mix: elapsed time is bounded
below by the analytic bandwidth model and the critical path, bounded
above by full serialization, data is always returned faithfully, and
accounting never loses a byte.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lookup_engine import effective_vector_bandwidth
from repro.sim import Simulator
from repro.ssd.flash import FlashArray
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def small_geometry(channels=4, dies=2):
    return SSDGeometry(
        channels=channels,
        dies_per_channel=dies,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
    )


@settings(max_examples=40, deadline=None)
@given(
    pages=st.lists(st.integers(min_value=0, max_value=4 * 2 * 2 * 8 * 16 - 1),
                   min_size=1, max_size=64),
)
def test_page_read_elapsed_bounds(pages):
    geometry = small_geometry()
    timing = SSDTimingModel()
    sim = Simulator()
    flash = FlashArray(sim, geometry, timing)
    elapsed = flash.run_reads(list(pages), vector=False)
    single = timing.flush_ns + timing.transfer_ns
    # Lower bound: at least one full read; and the busiest die's queue.
    die_load = {}
    for page in pages:
        address = geometry.page_index_to_address(page)
        key = (address.channel, address.die)
        die_load[key] = die_load.get(key, 0) + 1
    busiest = max(die_load.values())
    assert elapsed >= busiest * single - 1e-6
    # Upper bound: full serialization plus per-request overheads.
    assert elapsed <= len(pages) * (single + timing.request_overhead_ns) + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=64),
    ev_log=st.sampled_from([64, 128, 256]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_vector_read_elapsed_vs_analytic(count, ev_log, seed):
    geometry = small_geometry()
    timing = SSDTimingModel()
    sim = Simulator()
    flash = FlashArray(sim, geometry, timing)
    rng = np.random.default_rng(seed)
    slots = geometry.page_size // ev_log
    requests = [
        (int(rng.integers(0, geometry.total_pages)),
         int(rng.integers(0, slots)) * ev_log,
         ev_log)
        for _ in range(count)
    ]
    elapsed = flash.run_reads(requests, vector=True)
    analytic = timing.cycles_to_ns(
        count / effective_vector_bandwidth(geometry, timing, ev_log)
    )
    # The DES can never beat the bandwidth model by more than the
    # single-read latency (pipelining credit), and random addressing
    # costs at most ~a few x the perfectly-striped time for small sets.
    assert elapsed >= min(analytic, timing.vector_read_ns(ev_log)) * 0.5
    serial = count * (timing.vector_read_ns(ev_log) + timing.request_overhead_ns)
    assert elapsed <= serial + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.binary(min_size=1, max_size=64),
        ),
        min_size=1, max_size=20,
    )
)
def test_data_integrity_under_concurrent_access(writes):
    geometry = small_geometry()
    sim = Simulator()
    flash = FlashArray(sim, geometry)
    expected = {}
    for page, data in writes:
        flash.write_page(page, data)
        expected[page] = data  # last write wins
    procs = [
        sim.process(flash.read_vector_proc(page, 0, len(data)))
        for page, data in expected.items()
    ]
    sim.run()
    for proc, (page, data) in zip(procs, expected.items()):
        assert proc.value == data


@settings(max_examples=30, deadline=None)
@given(
    n_pages=st.integers(min_value=0, max_value=10),
    n_vectors=st.integers(min_value=0, max_value=10),
)
def test_accounting_conservation(n_pages, n_vectors):
    geometry = small_geometry()
    sim = Simulator()
    flash = FlashArray(sim, geometry)
    for i in range(n_pages):
        sim.process(flash.read_page_proc(i))
    for i in range(n_vectors):
        sim.process(flash.read_vector_proc(i, 0, 128))
    sim.run()
    stats = flash.stats
    assert stats.flash_page_reads == n_pages
    assert stats.flash_vector_reads == n_vectors
    assert stats.flash_bus_bytes == n_pages * 4096 + n_vectors * 128
    assert stats.host_read_bytes == n_pages * 4096
