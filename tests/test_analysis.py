"""Tests for analysis helpers: metrics, report rendering, energy."""

import pytest

from repro.analysis.energy import (
    EnergyBreakdown,
    EnergyModel,
    naive_ssd_energy,
    rmssd_energy,
)
from repro.analysis.metrics import (
    geometric_mean,
    latency_reduction,
    percentile,
    speedup,
    throughput_qps,
)
from repro.analysis.report import (
    Table,
    format_seconds,
    format_si,
    stage_breakdown_table,
)


class TestMetrics:
    def test_throughput(self):
        assert throughput_qps(1000, 1e9) == pytest.approx(1000.0)

    def test_throughput_invalid(self):
        with pytest.raises(ValueError):
            throughput_qps(1, 0)

    def test_speedup(self):
        assert speedup(100, 25) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_latency_reduction(self):
        assert latency_reduction(100, 3) == pytest.approx(0.97)
        with pytest.raises(ValueError):
            latency_reduction(0, 1)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, -1])

    def test_percentile_basics(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 50) == 3
        assert percentile(values, 100) == 5

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_percentile_single_value(self):
        assert percentile([7], 99) == 7

    def test_percentile_invalid(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_unsorted_input(self):
        assert percentile([5, 1, 3], 50) == 3


class TestReport:
    def test_format_si(self):
        assert format_si(1_500_000) == "1.50M"
        assert format_si(2_000) == "2.00K"
        assert format_si(42) == "42"

    def test_format_seconds(self):
        assert format_seconds(2.5e9) == "2.50s"
        assert format_seconds(3.2e6) == "3.20ms"
        assert format_seconds(4.7e3) == "4.70us"
        assert format_seconds(500) == "500ns"

    def test_format_seconds_sub_nanosecond(self):
        # Per-cycle quantities at multi-GHz clocks are fractions of a
        # nanosecond; they must not round to "0ns".
        assert format_seconds(0.5) == "0.5ns"
        assert format_seconds(0.3125) == "0.312ns"
        assert format_seconds(0) == "0ns"

    def test_format_seconds_negative(self):
        assert format_seconds(-4.7e3) == "-4.70us"
        assert format_seconds(-0.5) == "-0.5ns"

    def test_table_renders_aligned(self):
        table = Table("Title", ["a", "bb"])
        table.add_row(1, "x")
        table.add_row(100, "yy")
        text = table.render()
        assert "Title" in text
        lines = text.splitlines()
        assert len({len(l) for l in lines[2:]}) <= 2  # header + rows align

    def test_table_wrong_cell_count(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_print(self, capsys):
        table = Table("t", ["col"])
        table.add_row("v")
        table.print()
        assert "col" in capsys.readouterr().out

    def test_stage_breakdown_sorted_with_shares(self):
        table = stage_breakdown_table(
            "t", {"emb": 3000.0, "top": 1000.0, "bot": 0.0}
        )
        rows = table.rows
        assert [row[0] for row in rows] == ["emb", "top", "bot", "(sum)"]
        assert rows[0][1:] == ["3.00us", "75.0%"]
        assert rows[1][2] == "25.0%"
        assert rows[-1] == ["(sum)", "4.00us", "100.0%"]

    def test_stage_breakdown_per_inference_column(self):
        table = stage_breakdown_table(
            "t", {"emb": 2000.0}, per_inference=4
        )
        assert table.columns == ["stage", "time", "share", "per-inference"]
        assert table.rows[0][3] == "500ns"

    def test_stage_breakdown_empty_total(self):
        table = stage_breakdown_table("t", {"emb": 0.0})
        assert table.rows[0][2] == "-"
        assert table.rows[-1][2] == "-"


class TestEnergy:
    def test_breakdown_total(self):
        breakdown = EnergyBreakdown(
            flash_nj=1, host_link_nj=2, compute_nj=3, static_nj=4
        )
        assert breakdown.total_nj == 10
        assert breakdown.total_uj == pytest.approx(0.01)
        assert breakdown.as_dict()["total"] == 10

    def test_vector_read_cheaper_on_bus_than_page(self):
        energy = EnergyModel()
        vector = energy.vector_read_energy_nj(100, 128)
        page = energy.flash_read_energy_nj(100, 100 * 4096)
        assert vector < page

    def test_rmssd_link_energy_tiny(self):
        rm = rmssd_energy(
            model_macs=100_000, vectors=640, ev_size=128,
            result_bytes=64, elapsed_s=1e-3,
        )
        ssd = naive_ssd_energy(
            model_macs=100_000, miss_pages=500, hit_bytes=100_000,
            ev_size=128, vectors=640, elapsed_s=20e-3,
        )
        assert rm.host_link_nj < ssd.host_link_nj / 100
        assert rm.total_nj < ssd.total_nj

    def test_static_power_scales_with_time(self):
        slow = rmssd_energy(1, 1, 128, 64, elapsed_s=1.0)
        fast = rmssd_energy(1, 1, 128, 64, elapsed_s=0.5)
        assert slow.static_nj == pytest.approx(2 * fast.static_nj)
