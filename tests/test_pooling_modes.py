"""Tests for mean-pooling support across the stack.

The paper's embedding layer pools "via element-wise pooling operations
(e.g., addition, average)"; both modes must agree between the host
reference and the in-device EV Sum.
"""

import numpy as np
import pytest

from repro.core.device import RMSSD
from repro.embedding.pooling import (
    POOLING_MEAN,
    POOLING_SUM,
    pool,
    sls_all_tables,
    sparse_length_sum,
)
from repro.embedding.table import EmbeddingTable, EmbeddingTableSet
from repro.models import build_model, get_config


class TestPoolDispatch:
    def test_sum_mode(self):
        vectors = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        assert np.array_equal(pool(vectors, POOLING_SUM), [4.0, 6.0])

    def test_mean_mode(self):
        vectors = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        assert np.array_equal(pool(vectors, POOLING_MEAN), [2.0, 3.0])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            pool(np.zeros((1, 2), dtype=np.float32), "max")

    def test_sls_mean(self):
        table = EmbeddingTable("t", 10, 4, seed=1)
        result = sparse_length_sum(table, [1, 3], POOLING_MEAN)
        expected = ((table.row(1) + table.row(3)) / np.float32(2)).astype(np.float32)
        assert np.array_equal(result, expected)

    def test_single_lookup_modes_coincide(self):
        table = EmbeddingTable("t", 10, 4, seed=2)
        assert np.array_equal(
            sparse_length_sum(table, [5], POOLING_SUM),
            sparse_length_sum(table, [5], POOLING_MEAN),
        )


class TestMeanPoolingEndToEnd:
    def test_dlrm_mean_pooling_forward(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=64, seed=3, pooling="mean")
        sparse = [[0, 1, 2, 3]] * config.num_tables
        out = model.forward_one(np.zeros(config.dense_dim), sparse)
        assert 0.0 <= out[0] <= 1.0
        # Mean pooling must differ from sum pooling for multi-lookups.
        sum_model = build_model(config, rows_per_table=64, seed=3, pooling="sum")
        assert out[0] != sum_model.forward_one(np.zeros(config.dense_dim), sparse)[0]

    def test_invalid_pooling_rejected(self):
        config = get_config("rmc1")
        with pytest.raises(ValueError):
            build_model(config, rows_per_table=16, pooling="median")

    def test_device_matches_reference_with_mean_pooling(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=64, seed=4, pooling="mean")
        device = RMSSD(model, lookups_per_table=4)
        rng = np.random.default_rng(0)
        sparse = [
            [list(rng.integers(0, 64, size=4)) for _ in range(config.num_tables)]
            for _ in range(3)
        ]
        dense = rng.standard_normal((3, config.dense_dim)).astype(np.float32)
        outputs, _ = device.infer_batch(dense, sparse)
        reference = model.forward(dense, sparse)
        np.testing.assert_allclose(outputs, reference, rtol=1e-5, atol=1e-6)

    def test_engine_mean_pooling_exact(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=64, seed=5, pooling="mean")
        device = RMSSD(model, lookups_per_table=3)
        sparse = [[[1, 2, 4]] * config.num_tables]
        lookup = device.lookup_engine.lookup_batch(sparse)
        expected = sls_all_tables(model.tables, sparse[0], POOLING_MEAN)
        np.testing.assert_array_equal(lookup.pooled[0], expected)

    def test_engine_rejects_unknown_pooling(self):
        from repro.core.lookup_engine import EmbeddingLookupEngine

        config = get_config("rmc1")
        model = build_model(config, rows_per_table=16)
        device = RMSSD(model, lookups_per_table=1)
        with pytest.raises(ValueError):
            EmbeddingLookupEngine(device.controller, device.layout, pooling="max")
