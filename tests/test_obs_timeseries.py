"""Windowed series semantics, conservation, and the exporters.

Pins the contract the timeseries subsystem states for itself
(`repro/obs/timeseries.py` module docstring): window ``i`` covers
``[i*w, (i+1)*w)``, only timestamped mutations enter the series,
window deltas/counts sum to the run totals, the profiler resample
conserves busy time exactly, and both exporters (JSON document,
Prometheus text) are deterministic.
"""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Profiler,
    render_prometheus,
)
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    WindowedCounter,
    WindowedGauge,
    build_document,
    utilization_series,
    window_index,
)


# ----------------------------------------------------------------------
# Window arithmetic
# ----------------------------------------------------------------------
def test_window_index_boundaries():
    assert window_index(0.0, 100.0) == 0
    assert window_index(99.999, 100.0) == 0
    assert window_index(100.0, 100.0) == 1  # left-closed, right-open
    assert window_index(250.0, 100.0) == 2


def test_window_index_validation():
    with pytest.raises(ValueError):
        window_index(1.0, 0.0)
    with pytest.raises(ValueError):
        window_index(-1.0, 100.0)


# ----------------------------------------------------------------------
# Primitive series
# ----------------------------------------------------------------------
def test_counter_conservation():
    series = WindowedCounter("c", 100.0)
    for t in (0.0, 10.0, 150.0, 150.0, 950.0):
        series.record(t, 2)
    data = series.as_dict()
    assert data["kind"] == "counter"
    assert [w["index"] for w in data["windows"]] == [0, 1, 9]
    assert sum(w["delta"] for w in data["windows"]) == data["total"] == 10
    for window in data["windows"]:
        assert window["start_ns"] == window["index"] * 100.0
        assert window["rate_per_s"] == window["delta"] / (100.0 / 1e9)


def test_gauge_last_min_max():
    series = WindowedGauge("g", 100.0)
    series.record(10.0, 5.0)
    series.record(20.0, 1.0)
    series.record(30.0, 3.0)
    (window,) = series.as_dict()["windows"]
    assert (window["last"], window["min"], window["max"]) == (3.0, 1.0, 5.0)


def test_registry_windows_only_timestamped():
    """Untimestamped mutations update run aggregates only."""
    metrics = MetricsRegistry(window_ns=100.0)
    counter = metrics.counter("c")
    counter.inc(5)            # aggregate only
    counter.inc(3, t_ns=42.0)  # aggregate + window 0
    assert counter.value == 8
    assert counter.series.total == 3
    histogram = metrics.histogram("h")
    histogram.observe(50.0)
    histogram.observe(60.0, t_ns=120.0)
    assert histogram.count == 2
    assert histogram.series.total == 1
    assert histogram.series.window_indices() == [1]


def test_unwindowed_registry_has_no_series():
    metrics = MetricsRegistry()
    metrics.counter("c").inc(1, t_ns=5.0)
    metrics.histogram("h").observe(10.0, t_ns=5.0)
    assert metrics.series("c") is None
    assert metrics.series_dict() == {}


def test_latency_windows_match_aggregate_semantics():
    metrics = MetricsRegistry(window_ns=1000.0)
    histogram = metrics.histogram("h")
    for value, t in ((150.0, 10.0), (250.0, 20.0), (400.0, 1500.0)):
        histogram.observe(value, t_ns=t)
    series = histogram.series
    assert series.window_indices() == [0, 1]
    assert series.window_count(0) == 2
    assert series.window_count(1) == 1
    assert series.total == histogram.count == 3
    # A single-value window reports that value exactly at any quantile.
    assert series.window_percentile(1, 99.0) == 400.0
    data = series.as_dict()
    assert all(
        w["min_ns"] <= w["p50_ns"] <= w["p95_ns"] <= w["p99_ns"] <= w["max_ns"]
        for w in data["windows"]
    )


# ----------------------------------------------------------------------
# Satellite 1: overflow-bucket clipping fix
# ----------------------------------------------------------------------
def test_overflow_quantiles_not_clipped():
    """Values above the top bound interpolate over the observed range,
    not the last bucket boundary."""
    metrics = MetricsRegistry()
    histogram = metrics.histogram("h", bounds=[100.0, 200.0])
    histogram.observe(150.0)
    for _ in range(999):
        histogram.observe(90000.0)
    assert histogram.percentile(50.0) == 90000.0
    assert histogram.percentile(99.9) == 90000.0
    assert histogram.overflow_min_ns == pytest.approx(90000.0)


def test_overflow_range_interpolation():
    metrics = MetricsRegistry()
    histogram = metrics.histogram("h", bounds=[100.0])
    histogram.observe(1000.0)
    histogram.observe(3000.0)
    # Both in overflow: quantiles stay within the observed extremes.
    assert 1000.0 <= histogram.percentile(50.0) <= 3000.0
    assert histogram.percentile(100.0) == 3000.0


# ----------------------------------------------------------------------
# Profiler resample
# ----------------------------------------------------------------------
def test_utilization_series_conserves_busy_time():
    profiler = Profiler()
    # One interval spanning three windows, one fully inside window 4.
    profiler.record_busy("chan", 50.0, 250.0)
    profiler.record_busy("chan", 410.0, 450.0)
    series = utilization_series(profiler, 100.0)
    entry = series["chan"]
    windows = {w["index"]: w for w in entry["windows"]}
    assert set(windows) == {0, 1, 2, 4}
    assert windows[0]["busy_ns"] == 50.0
    assert windows[1]["busy_ns"] == 100.0
    assert windows[1]["utilization"] == 1.0
    assert windows[2]["busy_ns"] == 50.0
    assert windows[4]["busy_ns"] == 40.0
    assert sum(w["busy_ns"] for w in entry["windows"]) == entry["busy_ns"]
    assert all(0.0 <= w["utilization"] <= 1.0 for w in entry["windows"])


# ----------------------------------------------------------------------
# Document assembly and export
# ----------------------------------------------------------------------
def test_build_document_shape(tmp_path):
    metrics = MetricsRegistry(window_ns=100.0)
    metrics.counter("c").inc(1, t_ns=10.0)
    document = build_document(metrics=metrics)
    assert document["schema"] == TIMESERIES_SCHEMA
    assert document["window_ns"] == 100.0
    assert set(document["series"]) == {"c"}
    path = tmp_path / "ts.json"
    metrics.export_timeseries(str(path))
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(document))


def test_build_document_requires_window():
    with pytest.raises(ValueError):
        build_document(metrics=MetricsRegistry())


def test_registry_window_validation():
    with pytest.raises(ValueError):
        MetricsRegistry(window_ns=0.0)
    with pytest.raises(ValueError):
        MetricsRegistry(sketch_k=1)


# ----------------------------------------------------------------------
# Prometheus snapshot
# ----------------------------------------------------------------------
def test_render_prometheus_shape():
    metrics = MetricsRegistry()
    metrics.counter("serving.batches").inc(7)
    metrics.gauge("vcache.occupancy").set(0.5)
    histogram = metrics.histogram("serving.latency_ns", bounds=[100.0, 200.0])
    histogram.observe(50.0)
    histogram.observe(150.0)
    histogram.observe(500.0)
    text = render_prometheus(metrics)
    assert "rmssd_serving_batches_total 7" in text
    assert "rmssd_vcache_occupancy 0.5" in text
    # Cumulative le buckets plus the +Inf catch-all.
    assert 'rmssd_serving_latency_ns_bucket{le="100"} 1' in text
    assert 'rmssd_serving_latency_ns_bucket{le="200"} 2' in text
    assert 'rmssd_serving_latency_ns_bucket{le="+Inf"} 3' in text
    assert "rmssd_serving_latency_ns_count 3" in text
    assert "rmssd_serving_latency_ns_sum 700" in text
    # Deterministic: same registry renders the same bytes.
    assert text == render_prometheus(metrics)


def test_export_prometheus(tmp_path):
    metrics = MetricsRegistry()
    metrics.counter("c").inc(1)
    path = tmp_path / "prom.txt"
    metrics.export_prometheus(str(path))
    assert path.read_text() == render_prometheus(metrics)


# ----------------------------------------------------------------------
# tools/check_trace.py --timeseries validator
# ----------------------------------------------------------------------
class TestTimeseriesValidator:
    def _document(self):
        metrics = MetricsRegistry(window_ns=100.0)
        counter = metrics.counter("c")
        for t in (10.0, 150.0, 420.0):
            counter.inc(2, t_ns=t)
        histogram = metrics.histogram("h")
        for value, t in ((50.0, 10.0), (80.0, 15.0), (120.0, 250.0)):
            histogram.observe(value, t_ns=t)
        return metrics.timeseries_dict()

    def _check(self, document, tmp_path, metrics_doc=None):
        from tools.check_trace import check_timeseries

        path = tmp_path / "ts.json"
        path.write_text(json.dumps(document))
        metrics_path = None
        if metrics_doc is not None:
            metrics_path = tmp_path / "metrics.json"
            metrics_path.write_text(json.dumps(metrics_doc))
            metrics_path = str(metrics_path)
        return check_timeseries(str(path), metrics_path)

    def test_valid_document_passes(self, tmp_path):
        assert self._check(self._document(), tmp_path) == []

    def test_wrong_schema_flagged(self, tmp_path):
        document = self._document()
        document["schema"] = "rmssd-timeseries/v0"
        assert self._check(document, tmp_path)

    def test_unsorted_windows_flagged(self, tmp_path):
        document = self._document()
        document["series"]["c"]["windows"].reverse()
        problems = self._check(document, tmp_path)
        assert any("strictly increasing" in p for p in problems)

    def test_broken_conservation_flagged(self, tmp_path):
        document = self._document()
        document["series"]["c"]["windows"].pop()
        problems = self._check(document, tmp_path)
        assert any("total" in p for p in problems)

    def test_dropped_latency_window_flagged(self, tmp_path):
        document = self._document()
        document["series"]["h"]["windows"].pop(0)
        problems = self._check(document, tmp_path)
        assert any("counts sum" in p for p in problems)

    def test_metrics_cross_check(self, tmp_path):
        metrics = MetricsRegistry(window_ns=100.0)
        metrics.counter("c").inc(2, t_ns=10.0)
        document = metrics.timeseries_dict()
        registry = metrics.as_dict()
        assert self._check(document, tmp_path, registry) == []
        registry["counters"]["c"] = 99
        problems = self._check(document, tmp_path, registry)
        assert any("cross-check" in p for p in problems)
