"""Tests for the assembled RM-SSD device and host runtime."""

import numpy as np
import pytest

from repro.core.device import (
    MLP_DESIGN_NAIVE,
    MLP_DESIGN_OPTIMIZED,
    RMSSD,
)
from repro.core.interfaces import RMPermissionError, RMRuntime
from repro.core.registers import DeviceStatus, MMIOCostModel, MMIOManager, RMRegisters
from repro.models import build_model, get_config
from repro.ssd.stats import IOStatistics


def make_device(config_key="rmc1", rows=64, **kwargs):
    config = get_config(config_key)
    model = build_model(config, rows_per_table=rows, seed=7)
    return RMSSD(model, config.lookups_per_table, **kwargs), model, config


def random_requests(config, rows, batch, lookups=None, seed=0):
    rng = np.random.default_rng(seed)
    lookups = lookups or config.lookups_per_table
    sparse = [
        [list(rng.integers(0, rows, size=lookups)) for _ in range(config.num_tables)]
        for _ in range(batch)
    ]
    dense = rng.standard_normal((batch, config.dense_dim)).astype(np.float32)
    return dense, sparse


class TestNumericFidelity:
    def test_outputs_match_host_reference_rmc1(self):
        device, model, config = make_device("rmc1")
        dense, sparse = random_requests(config, 64, batch=3, lookups=8)
        outputs, _ = device.infer_batch(dense, sparse)
        reference = model.forward(dense, sparse)
        np.testing.assert_allclose(outputs, reference, rtol=1e-5, atol=1e-6)

    def test_outputs_match_host_reference_ncf(self):
        config = get_config("ncf")
        model = build_model(config, rows_per_table=32, seed=1)
        device = RMSSD(model, config.lookups_per_table)
        rng = np.random.default_rng(2)
        sparse = [
            [[int(rng.integers(0, 32))] for _ in range(4)] for _ in range(4)
        ]
        outputs, _ = device.infer_batch(None, sparse)
        reference = model.forward(None, sparse)
        np.testing.assert_allclose(outputs, reference, rtol=1e-5, atol=1e-6)

    def test_outputs_match_host_reference_wnd(self):
        config = get_config("wnd")
        model = build_model(config, rows_per_table=32, seed=1)
        device = RMSSD(model, config.lookups_per_table)
        rng = np.random.default_rng(3)
        sparse = [[[int(rng.integers(0, 32))] for _ in range(config.num_tables)]]
        dense = rng.standard_normal((1, config.dense_dim)).astype(np.float32)
        outputs, _ = device.infer_batch(dense, sparse)
        np.testing.assert_allclose(
            outputs, model.forward(dense, sparse), rtol=1e-5, atol=1e-6
        )

    def test_naive_design_same_numerics(self):
        device, model, config = make_device("rmc1", mlp_design=MLP_DESIGN_NAIVE)
        dense, sparse = random_requests(config, 64, batch=2, lookups=4)
        outputs, _ = device.infer_batch(dense, sparse)
        np.testing.assert_allclose(
            outputs, model.forward(dense, sparse), rtol=1e-5, atol=1e-6
        )


class TestTiming:
    def test_embedding_dominates_rmc1(self):
        device, _, config = make_device("rmc1")
        dense, sparse = random_requests(config, 64, batch=1)
        _, timing = device.infer_batch(dense, sparse)
        assert timing.emb_ns > timing.bot_ns
        assert timing.emb_ns > timing.top_ns
        assert timing.interval_ns == pytest.approx(timing.emb_ns)

    def test_io_overhead_under_one_percent(self):
        # Section VI-C: the MMIO interface costs <1% per inference.
        device, _, config = make_device("rmc1")
        dense, sparse = random_requests(config, 64, batch=1)
        _, timing = device.infer_batch(dense, sparse)
        assert timing.io_ns < 0.05 * timing.latency_ns

    def test_naive_slower_for_mlp_dominated(self):
        # Fig. 12(c): RM-SSD beats RM-SSD-Naive ~3x on RMC3 once the
        # batch fills the kernel pipeline.
        fast, _, config = make_device("rmc3", rows=32)
        slow, _, _ = make_device("rmc3", rows=32, mlp_design=MLP_DESIGN_NAIVE)
        dense, sparse = random_requests(config, 32, batch=8)
        _, t_fast = fast.infer_batch(dense, sparse)
        _, t_slow = slow.infer_batch(dense, sparse)
        assert t_slow.interval_ns > 1.5 * t_fast.interval_ns
        # Even at batch 1 the naive design is never faster.
        dense1, sparse1 = random_requests(config, 32, batch=1)
        _, t_fast1 = fast.infer_batch(dense1, sparse1)
        _, t_slow1 = slow.infer_batch(dense1, sparse1)
        assert t_slow1.interval_ns >= 0.95 * t_fast1.interval_ns

    def test_naive_similar_for_embedding_dominated(self):
        # Fig. 12(a)/(b): RM-SSD-Naive tracks RM-SSD when embedding-bound.
        fast, _, config = make_device("rmc1")
        slow, _, _ = make_device("rmc1", mlp_design=MLP_DESIGN_NAIVE)
        dense, sparse = random_requests(config, 64, batch=1)
        _, t_fast = fast.infer_batch(dense, sparse)
        _, t_slow = slow.infer_batch(dense, sparse)
        assert t_slow.interval_ns == pytest.approx(t_fast.interval_ns, rel=0.2)

    def test_pipelined_workload_faster_than_unpipelined(self):
        device, _, config = make_device("rmc1")
        batches = [random_requests(config, 64, batch=1, seed=s) for s in range(5)]
        dense_batches = [d for d, _ in batches]
        sparse_batches = [s for _, s in batches]
        piped = device.run_workload(dense_batches, sparse_batches, pipelined=True)
        device2, _, _ = make_device("rmc1")
        unpiped = device2.run_workload(dense_batches, sparse_batches, pipelined=False)
        assert piped.total_ns < unpiped.total_ns
        assert piped.qps > unpiped.qps

    def test_rmc1_throughput_order_of_magnitude(self):
        # Fig. 12(a): RM-SSD sustains O(1K) QPS on RMC1.
        device, _, config = make_device("rmc1")
        dense, sparse = random_requests(config, 64, batch=4)
        result = device.run_workload([dense], [sparse])
        _, timing = device.infer_batch(dense, sparse)
        qps = timing.nbatch / (timing.interval_ns / 1e9)
        assert 500 < qps < 5000

    def test_empty_batch_rejected(self):
        device, _, _ = make_device("rmc1")
        with pytest.raises(ValueError):
            device.infer_batch(None, [])

    def test_unknown_design_rejected(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=16)
        with pytest.raises(ValueError):
            RMSSD(model, config.lookups_per_table, mlp_design="bogus")

    def test_host_traffic_tiny(self):
        # Table IV: RM-SSD returns ~MMIO-width bytes per inference.
        device, _, config = make_device("rmc1")
        device.stats.reset()
        dense, sparse = random_requests(config, 64, batch=1)
        device.infer_batch(dense, sparse)
        # Read traffic: status poll + 64 B result, nothing else.
        assert device.stats.host_read_bytes <= 128


class TestRuntime:
    def _runtime(self):
        device, model, config = make_device("rmc1")
        runtime = RMRuntime(device, user="alice")
        for table_id in range(config.num_tables):
            runtime.rm_create_table(table_id, owner="alice")
        return runtime, model, config

    def test_create_open_infer(self):
        runtime, model, config = self._runtime()
        fds = [runtime.rm_open_table(t) for t in range(config.num_tables)]
        dense, sparse = random_requests(config, 64, batch=4, lookups=4)
        outputs, result = runtime.rm_infer(fds, dense, sparse)
        np.testing.assert_allclose(
            outputs, model.forward(dense, sparse), rtol=1e-5, atol=1e-6
        )
        assert result.inferences == 4

    def test_permission_enforced(self):
        runtime, _, _ = self._runtime()
        with pytest.raises(RMPermissionError):
            runtime.rm_open_table(0, user="mallory")

    def test_open_before_create_fails(self):
        device, _, config = make_device("rmc1")
        runtime = RMRuntime(device)
        with pytest.raises(FileNotFoundError):
            runtime.rm_open_table(0)

    def test_double_create_fails(self):
        runtime, _, _ = self._runtime()
        with pytest.raises(ValueError):
            runtime.rm_create_table(0)

    def test_invalid_fd_rejected(self):
        runtime, _, config = self._runtime()
        dense, sparse = random_requests(config, 64, batch=1, lookups=2)
        with pytest.raises(RMPermissionError):
            runtime.rm_infer([99], dense, sparse)

    def test_large_batch_partitioned(self):
        runtime, model, config = self._runtime()
        fds = [runtime.rm_open_table(t) for t in range(config.num_tables)]
        batch = 4 * max(1, runtime.device.supported_nbatch) + 1
        dense, sparse = random_requests(config, 64, batch=batch, lookups=2)
        outputs, result = runtime.rm_infer(fds, dense, sparse)
        assert outputs.shape == (batch, 1)
        assert len(result.batch_timings) == -(-batch // runtime.device.supported_nbatch)


class TestRegisters:
    def test_register_roundtrip(self):
        mmio = MMIOManager(IOStatistics())
        elapsed = mmio.write_register("num_lookups", 80)
        assert elapsed > 0
        value, _ = mmio.read_register("num_lookups")
        assert value == 80

    def test_status_enum(self):
        regs = RMRegisters()
        assert regs.status is DeviceStatus.IDLE
        regs.set_status(DeviceStatus.READY)
        assert regs.status is DeviceStatus.READY

    def test_dma_cost_scales_with_bytes(self):
        costs = MMIOCostModel()
        assert costs.dma_ns(1 << 20) > costs.dma_ns(1 << 10)
        assert costs.dma_ns(0) == 0.0
        with pytest.raises(ValueError):
            costs.dma_ns(-1)

    def test_traffic_accounted(self):
        stats = IOStatistics()
        mmio = MMIOManager(stats)
        mmio.dma_to_device(1000)
        mmio.dma_from_device(64)
        assert stats.host_write_bytes == 1000
        assert stats.host_read_bytes == 64


class TestTableUpload:
    def test_upload_time_positive_and_data_intact(self):
        device, model, config = make_device("rmc1")
        before = model.tables[0].row_bytes(0)
        elapsed = device.simulate_table_upload()
        assert elapsed > 0
        # A full-table stream is bounded below by the per-die program
        # throughput of the written pages.
        pages = sum(
            l.file_bytes // 4096 for l in device.layout.layouts.values()
        )
        dies = (
            device.controller.geometry.channels
            * device.controller.geometry.dies_per_channel
        )
        floor = pages * device.controller.timing.page_program_ns / dies
        assert elapsed >= 0.9 * floor
        # The laid-out data survives the rewrite.
        read = device.lookup_engine.lookup_batch(
            [[[0]] + [[0]] * (config.num_tables - 1)]
        )
        assert read.pooled[0, :32].tobytes() == before

    def test_upload_scales_with_capacity(self):
        small, _, _ = make_device("rmc1", rows=32)
        big, _, _ = make_device("rmc1", rows=128)
        assert big.simulate_table_upload() > small.simulate_table_upload()
