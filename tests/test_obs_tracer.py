"""Span tracer unit tests: recording, lanes, export, no-op mode.

The no-op tests pin the "near-zero overhead when disabled" contract:
a disabled run records zero spans and allocates nothing per call site
(the measure() context manager is one shared instance).
"""

import json

import pytest

from repro.obs import tracer as tracer_module
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    global_tracer,
    resolve_tracer,
    tracing_from_env,
)


class TestRecording:
    def test_add_span_records_identity(self):
        tracer = Tracer()
        span = tracer.add_span("read", 10.0, 25.0, cat="ssd", track="t")
        assert span.key() == ("t", "read", 10.0, 25.0)
        assert span.duration_ns == 15
        assert len(tracer) == 1
        assert tracer.as_tuples() == [("t", "read", 10.0, 25.0)]

    def test_backwards_span_raises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="ends before it starts"):
            tracer.add_span("bad", 10.0, 5.0)

    def test_zero_width_span_is_allowed(self):
        tracer = Tracer()
        tracer.add_span("instant", 7.0, 7.0)
        assert tracer.spans[0].duration_ns == 0

    def test_spans_named_filters(self):
        tracer = Tracer()
        tracer.add_span("a", 0, 1)
        tracer.add_span("b", 1, 2)
        tracer.add_span("a", 2, 3)
        assert [s.start_ns for s in tracer.spans_named("a")] == [0.0, 2.0]

    def test_measure_reads_clock_at_enter_and_exit(self):
        tracer = Tracer()
        clock = iter([100.0, 140.0])
        with tracer.measure(lambda: next(clock), "op", track="m"):
            pass
        assert tracer.as_tuples() == [("m", "op", 100.0, 140.0)]


class TestLanes:
    def test_sequential_spans_share_lane_zero(self):
        tracer = Tracer()
        assert tracer.lane_track("g", 0.0, 10.0) == "g"
        assert tracer.lane_track("g", 10.0, 20.0) == "g"

    def test_overlapping_spans_get_distinct_lanes(self):
        tracer = Tracer()
        assert tracer.lane_track("g", 0.0, 10.0) == "g"
        assert tracer.lane_track("g", 5.0, 15.0) == "g[1]"
        assert tracer.lane_track("g", 7.0, 9.0) == "g[2]"
        # Lane 0 frees at 10; the next span fits there again.
        assert tracer.lane_track("g", 12.0, 20.0) == "g"

    def test_groups_are_independent(self):
        tracer = Tracer()
        assert tracer.lane_track("a", 0.0, 10.0) == "a"
        assert tracer.lane_track("b", 0.0, 10.0) == "b"


class TestChromeExport:
    def test_balanced_nested_events(self):
        tracer = Tracer()
        tracer.add_span("parent", 0.0, 100.0, track="t")
        tracer.add_span("child", 10.0, 40.0, track="t")
        events = [e for e in tracer.chrome_events() if e["ph"] in "BE"]
        assert [(e["ph"], e["name"]) for e in events] == [
            ("B", "parent"), ("B", "child"), ("E", "child"), ("E", "parent"),
        ]
        # Chrome-trace ts is microseconds.
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(0.01)

    def test_metadata_events_name_process_and_tracks(self):
        tracer = Tracer()
        tracer.add_span("x", 0, 1, track="alpha")
        tracer.add_span("y", 0, 1, track="beta")
        meta = [e for e in tracer.chrome_events() if e["ph"] == "M"]
        names = [e["args"]["name"] for e in meta if e["name"] == "thread_name"]
        assert names == ["alpha", "beta"]

    def test_partial_overlap_on_one_track_raises(self):
        tracer = Tracer()
        tracer.add_span("a", 0.0, 10.0, track="t")
        tracer.add_span("b", 5.0, 15.0, track="t")
        with pytest.raises(ValueError, match="partially overlaps"):
            tracer.chrome_events()

    def test_overlap_on_distinct_tracks_is_fine(self):
        tracer = Tracer()
        tracer.add_span("a", 0.0, 10.0, track="t1")
        tracer.add_span("b", 5.0, 15.0, track="t2")
        assert len([e for e in tracer.chrome_events() if e["ph"] in "BE"]) == 4

    def test_timestamps_non_decreasing_per_track(self):
        tracer = Tracer()
        tracer.add_span("p", 0.0, 50.0, track="t")
        tracer.add_span("c1", 5.0, 10.0, track="t")
        tracer.add_span("c2", 10.0, 30.0, track="t")
        last = {}
        for event in tracer.chrome_events():
            if event["ph"] not in "BE":
                continue
            assert event["ts"] >= last.get(event["tid"], float("-inf"))
            last[event["tid"]] = event["ts"]

    def test_export_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.add_span("op", 0.0, 1000.0, args={"n": 3})
        path = tracer.export_chrome(str(tmp_path / "trace.json"))
        document = json.loads(open(path).read())
        assert document["displayTimeUnit"] == "ns"
        begins = [e for e in document["traceEvents"] if e["ph"] == "B"]
        assert begins[0]["args"] == {"n": 3}


class TestNullTracer:
    def test_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.add_span("x", 0, 1) is None
        assert NULL_TRACER.as_tuples() == []
        assert NULL_TRACER.spans_named("x") == []
        assert NULL_TRACER.chrome_events() == []

    def test_measure_returns_shared_instance(self):
        # No per-call allocation in hot loops: the context manager is
        # one module-level object, handed out every time.
        first = NULL_TRACER.measure(lambda: 0.0, "a")
        second = NULL_TRACER.measure(lambda: 0.0, "b")
        assert first is second
        with first:
            pass
        assert len(NULL_TRACER) == 0

    def test_lane_track_is_group_name(self):
        assert NULL_TRACER.lane_track("g", 0.0, 10.0) == "g"
        assert NULL_TRACER.lane_index("g", 0.0, 10.0) == 0

    def test_export_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="disabled"):
            NULL_TRACER.export_chrome(str(tmp_path / "no.json"))


class TestResolution:
    def test_explicit_tracer_wins(self, monkeypatch):
        monkeypatch.setenv("RMSSD_TRACE", "1")
        mine = Tracer()
        assert resolve_tracer(mine) is mine

    def test_env_off_resolves_to_null(self, monkeypatch):
        monkeypatch.delenv("RMSSD_TRACE", raising=False)
        assert not tracing_from_env()
        assert resolve_tracer(None) is NULL_TRACER

    def test_env_on_resolves_to_shared_global(self, monkeypatch):
        monkeypatch.setenv("RMSSD_TRACE", "1")
        monkeypatch.setattr(tracer_module, "_global_tracer", None)
        first = global_tracer()
        assert isinstance(first, Tracer)
        assert resolve_tracer(None) is first

    def test_falsy_env_values_stay_off(self, monkeypatch):
        for value in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("RMSSD_TRACE", value)
            assert not tracing_from_env()


class TestDisabledInstrumentation:
    def test_lookup_engine_records_nothing_when_disabled(self, monkeypatch):
        monkeypatch.delenv("RMSSD_TRACE", raising=False)
        from tests.test_fastpath_equivalence import build_engine

        engine = build_engine("single")
        assert isinstance(engine.controller.tracer, NullTracer)
        batch = [[[0, 1], [2], [3]]]
        engine.lookup_batch(batch, fast=False)
        engine.lookup_batch(batch, fast=True)
        assert len(engine.controller.tracer) == 0
