"""Streaming quantile sketch: error-bound contract and determinism.

The sketch's whole value is the contract it states about itself:
``rank_error_bound()`` is a *hard* bound on how far any reported
quantile's true rank can sit from the target rank.  The property test
checks that contract against an exact sort for arbitrary streams and
capacities; the rest pins exactness below capacity, deterministic
compaction (same stream twice -> same retained items), and the
exported summary shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import QuantileSketch
from repro.obs.sketch import DEFAULT_K, resolve_sketch


def exact_rank(values, threshold):
    """Number of values <= threshold."""
    return sum(1 for v in values if v <= threshold)


def test_exact_below_capacity():
    sketch = QuantileSketch(k=64)
    values = [float(v) for v in range(50)]
    sketch.extend(values)
    assert sketch.rank_error_bound() == 0
    for q in (1.0, 50.0, 99.0, 100.0):
        target = max(1, int(np.ceil(q / 100.0 * len(values))))
        assert sketch.quantile(q) == sorted(values)[target - 1]


def test_empty_sketch():
    sketch = QuantileSketch(k=8)
    assert sketch.n == 0
    assert sketch.quantile(99.0) == 0.0
    assert sketch.rank_error_bound() == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        QuantileSketch(k=1)


def test_invalid_quantile_rejected():
    sketch = QuantileSketch(k=8)
    sketch.insert(1.0)
    with pytest.raises(ValueError):
        sketch.quantile(-1.0)
    with pytest.raises(ValueError):
        sketch.quantile(101.0)


def test_deterministic_compaction():
    """Two sketches fed the same stream retain identical items —
    compaction is parity-alternating, not randomized."""
    rng = np.random.default_rng(7)
    stream = rng.exponential(1000.0, size=5000).tolist()
    a, b = QuantileSketch(k=16), QuantileSketch(k=16)
    a.extend(stream)
    b.extend(stream)
    assert a._weighted_items() == b._weighted_items()
    assert a.as_dict() == b.as_dict()


def test_retained_is_bounded():
    """Memory stays O(k log(n/k)) — far below n."""
    sketch = QuantileSketch(k=32)
    sketch.extend(float(v) for v in range(100_000))
    assert sketch.n == 100_000
    assert sketch.retained < 32 * 20


def test_as_dict_fields():
    sketch = QuantileSketch(k=64)
    sketch.extend(float(v) for v in range(1, 101))
    data = sketch.as_dict()
    for field in (
        "k", "n", "retained", "rank_error_bound",
        "p99_ns", "p999_ns", "p9999_ns", "max_ns",
    ):
        assert field in data
    assert data["n"] == 100
    assert data["max_ns"] == 100.0


def test_resolve_sketch():
    assert resolve_sketch(None) is None
    assert resolve_sketch(128).k == 128
    assert QuantileSketch().k == DEFAULT_K


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=4000),
    k=st.sampled_from([4, 8, 16, 64, 256]),
    q=st.sampled_from([50.0, 90.0, 99.0, 99.9, 99.99]),
)
def test_rank_error_bound_holds(seed, n, k, q):
    """The contract: the reported quantile's true rank is within
    rank_error_bound() of the target rank, for any stream."""
    rng = np.random.default_rng(seed)
    # Heavy-tailed with duplicates — the hard case for rank queries.
    values = np.round(rng.lognormal(10.0, 2.0, size=n)).tolist()
    sketch = QuantileSketch(k=k)
    sketch.extend(values)
    assert sketch.n == n
    reported = sketch.quantile(q)
    bound = sketch.rank_error_bound()
    target = max(1, int(np.ceil(q / 100.0 * n)))
    # True ranks of the reported value: it occupies the closed rank
    # interval [count(< v) + 1, count(<= v)].
    rank_high = exact_rank(values, reported)
    rank_low = sum(1 for v in values if v < reported) + 1
    assert rank_low - bound <= target <= rank_high + bound, (
        f"target rank {target} outside [{rank_low - bound}, "
        f"{rank_high + bound}] (bound {bound}, n {n}, k {k})"
    )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_p999_bound_at_scale(seed):
    """Acceptance pin: p999 satisfies the stated rank-error bound on a
    realistic latency-shaped stream at the CLI's default capacity."""
    rng = np.random.default_rng(seed)
    values = rng.gamma(2.0, 5e5, size=3000).tolist()
    sketch = QuantileSketch(k=1024)
    sketch.extend(values)
    bound = sketch.rank_error_bound()
    target = max(1, int(np.ceil(0.999 * len(values))))
    reported = sketch.quantile(99.9)
    rank_high = exact_rank(values, reported)
    rank_low = sum(1 for v in values if v < reported) + 1
    assert rank_low - bound <= target <= rank_high + bound
    # At n ~ 3k and k = 1024 the sketch should still be near-exact.
    assert bound <= 8 * len(values) // 1024
