"""Heterogeneous table sizes.

Production models mix tiny tables (countries) with enormous ones
(users, items); only the dimension must agree.  Layout, translation,
and the lookup engine must handle per-table row counts independently.
"""

import numpy as np
import pytest

from repro.core.lookup_engine import EmbeddingLookupEngine
from repro.embedding.layout import EmbeddingLayout
from repro.embedding.pooling import sls_batch
from repro.embedding.table import EmbeddingTable, EmbeddingTableSet
from repro.embedding.translator import EVTranslator
from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry


def build(max_extent_pages=None):
    geo = SSDGeometry(
        channels=4, dies_per_channel=2, planes_per_die=2,
        blocks_per_plane=32, pages_per_block=32,
    )
    tables = EmbeddingTableSet(
        [
            EmbeddingTable("tiny", 3, 32, seed=1),
            EmbeddingTable("medium", 77, 32, seed=2),
            EmbeddingTable("large", 1000, 32, seed=3),
        ]
    )
    device = BlockDevice(SSDController(Simulator(), geo), max_extent_pages)
    layout = EmbeddingLayout(device, tables)
    layout.create_all()
    return tables, layout, EmbeddingLookupEngine(device.controller, layout)


class TestHeterogeneousTables:
    def test_lookup_engine_exact(self):
        tables, _, engine = build()
        batch = [[[0, 2], [0, 76], [999, 500, 1]]]
        result = engine.lookup_batch(batch)
        np.testing.assert_array_equal(result.pooled, sls_batch(tables, batch))

    def test_per_table_bounds_enforced(self):
        tables, layout, engine = build()
        with pytest.raises(IndexError):
            engine.translator.translate(0, 3)  # tiny table has 3 rows
        # ...while the same index is fine on the large table.
        engine.translator.translate(2, 3)

    def test_fragmented_heterogeneous_layout(self):
        tables, layout, engine = build(max_extent_pages=2)
        batch = [[[1], [50], [31, 32, 33]]]  # crosses slot boundaries
        result = engine.lookup_batch(batch)
        np.testing.assert_array_equal(result.pooled, sls_batch(tables, batch))

    def test_file_sizes_proportional_to_rows(self):
        tables, layout, _ = build()
        sizes = [layout.layout_for(t).file_bytes for t in range(3)]
        assert sizes[0] <= sizes[1] <= sizes[2]
        # Tiny table still costs one full page.
        assert sizes[0] == 4096

    def test_metadata_hole_detected(self):
        # A corrupted extent map (gap in the index ranges) must be
        # surfaced, not silently mis-addressed.
        from repro.embedding.layout import ExtentRange

        translator = EVTranslator(page_size=4096)
        holey = [
            ExtentRange(extent_id=0, first_index=0, last_index=9, start_lba=0),
            ExtentRange(extent_id=1, first_index=20, last_index=29, start_lba=1),
        ]
        translator.register_table(0, holey, ev_size=128, rows=30)
        translator.translate(0, 5)  # inside the first extent: fine
        with pytest.raises(RuntimeError):
            translator.translate(0, 15)  # falls into the hole
