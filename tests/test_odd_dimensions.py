"""Non-power-of-two embedding dimensions.

Production tables use 64-256 B vectors, but nothing in the design
requires the vector size to divide the page size.  With e.g. dim 24
(96 B), a 4 KB page holds 42 vectors and 64 B of padding; the layout,
translator, and engines must all keep vectors page-aligned and
byte-exact through the padding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lookup_engine import EmbeddingLookupEngine
from repro.embedding.layout import EmbeddingLayout
from repro.embedding.pooling import sls_batch
from repro.embedding.table import EmbeddingTableSet
from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry


def build_engine(dim, rows=90, num_tables=2, max_extent_pages=None):
    geo = SSDGeometry(
        channels=4, dies_per_channel=2, planes_per_die=2,
        blocks_per_plane=32, pages_per_block=32,
    )
    device = BlockDevice(SSDController(Simulator(), geo), max_extent_pages)
    tables = EmbeddingTableSet.uniform(num_tables, rows, dim, seed=4)
    layout = EmbeddingLayout(device, tables)
    layout.create_all()
    return tables, layout, EmbeddingLookupEngine(device.controller, layout)


class TestOddDimensions:
    @pytest.mark.parametrize("dim", [24, 40, 100, 200])
    def test_layout_never_straddles_pages(self, dim):
        tables, layout, _ = build_engine(dim)
        tl = layout.layout_for(0)
        ev_size = dim * 4
        for index in range(tables[0].rows):
            offset = tl.vector_file_offset(index)
            assert offset // 4096 == (offset + ev_size - 1) // 4096

    @pytest.mark.parametrize("dim", [24, 100])
    def test_padding_slots_computed(self, dim):
        _, layout, _ = build_engine(dim)
        tl = layout.layout_for(0)
        assert tl.slots_per_page == 4096 // (dim * 4)
        # Padding exists: slots * ev_size < page size.
        assert tl.slots_per_page * dim * 4 < 4096

    @pytest.mark.parametrize("dim", [24, 40, 200])
    def test_lookup_engine_exact_through_padding(self, dim):
        tables, _, engine = build_engine(dim)
        rng = np.random.default_rng(0)
        batch = [
            [list(rng.integers(0, 90, size=5)) for _ in range(2)]
            for _ in range(2)
        ]
        result = engine.lookup_batch(batch)
        np.testing.assert_array_equal(result.pooled, sls_batch(tables, batch))

    def test_fragmented_extents_with_odd_dim(self):
        tables, layout, engine = build_engine(24, max_extent_pages=1)
        batch = [[[0, 41, 42, 89], [43, 44]]]
        result = engine.lookup_batch(batch)
        np.testing.assert_array_equal(result.pooled, sls_batch(tables, batch))

    @settings(max_examples=25, deadline=None)
    @given(
        dim=st.integers(min_value=2, max_value=512),
        index=st.integers(min_value=0, max_value=89),
    )
    def test_translation_property_any_dim(self, dim, index):
        tables, layout, engine = build_engine(dim, rows=90, num_tables=1)
        read = engine.translator.translate(0, index)
        col = read.device_offset % 4096
        assert col + read.size <= 4096
        data = engine.controller.peek_logical(read.device_offset, read.size)
        np.testing.assert_array_equal(
            np.frombuffer(data, dtype=np.float32), tables[0].row(index)
        )
