"""Unit tests for per-request critical-path attribution
(:mod:`repro.obs.critpath`).

The exactness contract is the headline: every breakdown's
``latency_ns`` *is* the fixed-order component sum (an equality, not a
tolerance), tail exemplars break latency ties deterministically, and
empty runs export an empty document rather than raising.
"""

import json

import pytest

from repro.core.pipeline_sim import BatchRecord, PipelineSimulator
from repro.obs import names
from repro.obs.critpath import (
    COMPONENTS,
    EXPLAIN_SCHEMA,
    CritPathCollector,
    build_explain_document,
    canonical_order,
    component_sum,
    export_explain_document,
    request_breakdown,
    tail_exemplars,
)


def record(index=0, arrival=0.0, emb=(10.0, 30.0), bot=(10.0, 25.0),
           top=(30.0, 42.0)):
    return BatchRecord(
        index=index,
        arrival_ns=arrival,
        emb_start_ns=emb[0],
        emb_done_ns=emb[1],
        bot_start_ns=bot[0],
        bot_done_ns=bot[1],
        top_start_ns=top[0],
        top_done_ns=top[1],
    )


class TestRequestBreakdown:
    def test_emb_critical_branch(self):
        b = request_breakdown(record())
        assert b["critical_stage"] == "emb"
        assert b["emb_ns"] == 20.0
        assert b["bot_ns"] == 0.0  # hidden behind the embedding branch
        assert b["queue_ns"] == 10.0  # 10 pre-branch + 0 pre-top
        assert b["top_ns"] == 12.0
        assert b["latency_ns"] == 42.0

    def test_bot_critical_branch(self):
        b = request_breakdown(record(emb=(10.0, 20.0), bot=(10.0, 35.0),
                                     top=(35.0, 50.0)))
        assert b["critical_stage"] == "bot"
        assert b["bot_ns"] == 25.0
        assert b["emb_ns"] == 0.0

    def test_tie_blames_embedding(self):
        b = request_breakdown(record(emb=(10.0, 30.0), bot=(10.0, 30.0)))
        assert b["critical_stage"] == "emb"

    def test_conservation_is_exact_equality(self):
        b = request_breakdown(record(arrival=7.5, emb=(9.25, 30.125),
                                     bot=(9.25, 12.0), top=(31.0, 44.875)))
        assert b["latency_ns"] == component_sum(b)

    def test_latency_is_the_sum_not_the_raw_difference(self):
        # Float addition is not associative: at these timestamps the
        # fixed-order component sum and the telescoped top_done -
        # arrival differ by an ulp.  The breakdown must define latency
        # as the sum, so validators can demand exact equality.
        b = request_breakdown(record(
            arrival=240.69652516689467,
            emb=(422.6654473531057, 5491.2433158643835),
            bot=(422.6654473531057, 2967.2594321868987),
            top=(5556.864159137114, 14155.69838035173),
        ))
        raw = 14155.69838035173 - 240.69652516689467
        assert b["latency_ns"] == component_sum(b)
        assert b["latency_ns"] != raw  # differs by an ulp, by design

    def test_replica_stamp(self):
        assert request_breakdown(record(), replica=3)["replica"] == 3


class TestCollector:
    def test_records_stream_and_replica_context(self):
        collector = CritPathCollector()
        collector.record_requests(names.CRITPATH_REQUESTS, [record(0)])
        collector.set_replica(2)
        collector.record_requests(names.CRITPATH_REQUESTS, [record(1)])
        assert collector.stream == names.CRITPATH_REQUESTS
        assert len(collector) == 2
        assert [r["replica"] for r in collector.requests] == [0, 2]

    def test_reset_keeps_replica_context(self):
        collector = CritPathCollector()
        collector.set_replica(5)
        collector.record_requests(names.CRITPATH_REQUESTS, [record(0)])
        collector.reset()
        assert len(collector) == 0
        collector.record_requests(names.CRITPATH_REQUESTS, [record(1)])
        assert collector.requests[0]["replica"] == 5

    def test_pipeline_feeds_collector_on_both_paths(self):
        for fast in (False, True):
            collector = CritPathCollector()
            simulator = PipelineSimulator(
                emb_ns=9_000.0, bot_ns=4_000.0, top_ns=6_000.0,
                critpath=collector,
            )
            simulator.run(5, fast=fast)
            assert len(collector) == 5
            assert collector.stream == names.CRITPATH_REQUESTS


class TestTailExemplars:
    def test_empty_requests(self):
        assert tail_exemplars([], threshold_ns=0.0, top_k=3) == []

    def test_single_request(self):
        b = request_breakdown(record())
        assert tail_exemplars([b], b["latency_ns"], top_k=3) == [b]
        assert tail_exemplars([b], b["latency_ns"] + 1.0, top_k=3) == []

    def test_identical_latencies_tie_break_is_deterministic(self):
        # Same latency everywhere: order must fall back to (arrival,
        # replica, batch), so the exemplar list is stable.
        requests = [
            request_breakdown(record(index=i, arrival=float(10 - i),
                                     emb=(10.0 - i + 1, 30.0 - i + 1),
                                     bot=(10.0 - i + 1, 25.0 - i + 1),
                                     top=(30.0 - i + 1, 42.0 - i + 1)))
            for i in range(4)
        ]
        assert len({r["latency_ns"] for r in requests}) == 1
        exemplars = tail_exemplars(requests, requests[0]["latency_ns"], 2)
        assert [e["batch"] for e in exemplars] == [3, 2]

    def test_top_k_zero_and_negative(self):
        b = request_breakdown(record())
        assert tail_exemplars([b], 0.0, top_k=0) == []
        assert tail_exemplars([b], 0.0, top_k=-1) == []


class TestExplainDocument:
    def test_empty_document(self):
        document = build_explain_document([])
        assert document["schema"] == EXPLAIN_SCHEMA
        assert document["quantiles"] == []
        assert document["totals"] == {
            "count": 0, "mean_latency_ns": 0.0, "blame": {},
        }
        assert document["requests"] == {"count": 0, "records": []}

    def test_single_request_document(self):
        b = request_breakdown(record())
        document = build_explain_document([b], quantiles=(99.0,))
        (entry,) = document["quantiles"]
        assert entry["latency_ns"] == b["latency_ns"]
        assert entry["tail"]["count"] == 1
        assert entry["exemplars"] == [b]
        # Blame shares partition the tail's latency.
        assert sum(entry["tail"]["blame"].values()) == pytest.approx(1.0)

    def test_exemplar_breakdowns_sum_exactly(self):
        collector = CritPathCollector()
        simulator = PipelineSimulator(
            emb_ns=9_000.0, bot_ns=4_000.0, top_ns=6_000.0,
            critpath=collector,
        )
        simulator.run(20, arrival_interval_ns=5_000.0)
        document = build_explain_document(collector.requests)
        assert document["quantiles"]
        for entry in document["quantiles"]:
            for exemplar in entry["exemplars"]:
                assert exemplar["latency_ns"] == component_sum(exemplar)
                assert exemplar["latency_ns"] >= entry["latency_ns"]

    def test_canonical_order_and_meta(self, tmp_path):
        requests = [
            request_breakdown(record(index=1, arrival=5.0, emb=(15.0, 35.0),
                                     bot=(15.0, 30.0), top=(35.0, 47.0))),
            request_breakdown(record(index=0, arrival=0.0)),
        ]
        document = build_explain_document(requests, meta={"model": "rmc1"})
        arrivals = [r["arrival_ns"] for r in document["requests"]["records"]]
        assert arrivals == sorted(arrivals)
        assert document["meta"] == {"model": "rmc1"}
        path = export_explain_document(document, str(tmp_path / "e.json"))
        loaded = json.load(open(path))
        assert loaded == document

    def test_include_requests_false_drops_records(self):
        document = build_explain_document(
            [request_breakdown(record())], include_requests=False
        )
        assert document["requests"] == {"count": 1}

    def test_components_are_canonical(self):
        assert build_explain_document([])["components"] == list(COMPONENTS)

    def test_canonical_order_unique_key(self):
        a = request_breakdown(record(index=0), replica=1)
        b = request_breakdown(record(index=0), replica=0)
        assert canonical_order([a, b]) == [b, a]
