"""Property: sanitizer mode is observation-only.

A randomized workload (timed writes, then a mix of page- and
vector-grained reads) run with ``sanitize=True`` must produce
byte-identical statistics, data, and simulated clock to the same
workload with ``sanitize=False``.  This is what lets conftest switch
the sanitizer on for the whole suite without changing any number the
benchmarks report.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.ssd.flash import FlashArray
from repro.ssd.geometry import SSDGeometry


def small_geometry():
    return SSDGeometry(
        channels=2,
        dies_per_channel=2,
        planes_per_die=1,
        blocks_per_plane=4,
        pages_per_block=8,
    )


TOTAL_PAGES = small_geometry().total_pages

write_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=TOTAL_PAGES - 1),
        st.binary(min_size=1, max_size=64),
    ),
    max_size=8,
    unique_by=lambda op: op[0],  # one program per page (erase-before-write)
)

read_ops = st.lists(
    st.tuples(
        st.booleans(),  # vector-grained?
        st.integers(min_value=0, max_value=TOTAL_PAGES - 1),
        st.integers(min_value=0, max_value=4096 - 64),  # col
        st.integers(min_value=4, max_value=64),  # size
    ),
    max_size=16,
)


def run_workload(sanitize, writes, reads):
    """Run the workload on a fresh simulator; return an observation."""
    sim = Simulator(sanitize=sanitize)
    flash = FlashArray(sim, small_geometry())
    for page, data in writes:
        sim.process(flash.write_page_proc(page, data))
    sim.run()
    results = []
    for is_vector, page, col, size in reads:
        if is_vector:
            proc = sim.process(flash.read_vector_proc(page, col, size))
        else:
            proc = sim.process(flash.read_page_proc(page))
        results.append(proc)
    sim.run()
    return {
        "now": repr(sim.now),
        "stats": repr(flash.stats.as_dict()),
        "data": [repr(proc.value) for proc in results],
        "bus_busy": [repr(ch.bus.busy_time) for ch in flash.channels],
    }


@settings(max_examples=30, deadline=None)
@given(writes=write_ops, reads=read_ops)
def test_sanitizer_is_observation_only(writes, reads):
    plain = run_workload(False, writes, reads)
    sanitized = run_workload(True, writes, reads)
    assert plain == sanitized


@settings(max_examples=15, deadline=None)
@given(writes=write_ops, reads=read_ops)
def test_sanitized_run_performs_checks(writes, reads):
    sim = Simulator(sanitize=True)
    flash = FlashArray(sim, small_geometry())
    for page, data in writes:
        sim.process(flash.write_page_proc(page, data))
    for is_vector, page, col, size in reads:
        if is_vector:
            sim.process(flash.read_vector_proc(page, col, size))
        else:
            sim.process(flash.read_page_proc(page))
    sim.run()
    assert sim.sanitizer.checks > 0
