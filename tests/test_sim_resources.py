"""Tests for simulation resources (Resource, Server, Store)."""

import pytest

from repro.sim import Resource, Server, Simulator, Store


class TestResource:
    def test_acquire_within_capacity_is_immediate(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        times = []

        def worker():
            yield res.acquire()
            times.append(sim.now)
            yield sim.timeout(10)
            res.release()

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert times == [0, 0]

    def test_acquire_beyond_capacity_queues_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        starts = {}

        def worker(name, hold):
            yield res.acquire()
            starts[name] = sim.now
            yield sim.timeout(hold)
            res.release()

        sim.process(worker("a", 5))
        sim.process(worker("b", 5))
        sim.process(worker("c", 5))
        sim.run()
        assert starts == {"a": 0, "b": 5, "c": 10}

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_queue_length_tracks_waiters(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield sim.timeout(100)
            res.release()

        def waiter():
            yield res.acquire()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1)
        assert res.queue_length == 1
        assert res.in_use == 1

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestServer:
    def test_jobs_serialize_back_to_back(self):
        sim = Simulator()
        server = Server(sim)
        finishes = []

        def submit(duration):
            yield server.serve(duration)
            finishes.append(sim.now)

        sim.process(submit(10))
        sim.process(submit(5))
        sim.run()
        assert finishes == [10, 15]

    def test_idle_gap_not_counted_busy(self):
        sim = Simulator()
        server = Server(sim)

        def late_job():
            yield sim.timeout(100)
            yield server.serve(10)

        sim.process(late_job())
        sim.run()
        assert sim.now == 110
        assert server.busy_time == 10
        assert server.utilization(110) == pytest.approx(10 / 110)

    def test_negative_duration_rejected(self):
        sim = Simulator()
        server = Server(sim)
        with pytest.raises(ValueError):
            server.serve(-1)

    def test_jobs_served_counter(self):
        sim = Simulator()
        server = Server(sim)
        for _ in range(7):
            server.serve(1)
        sim.run()
        assert server.jobs_served == 7
        assert sim.now == 7


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        got = []

        def consumer():
            value = yield store.get()
            got.append(value)

        sim.process(consumer())
        sim.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            value = yield store.get()
            got.append((sim.now, value))

        def producer():
            yield sim.timeout(8)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(8, "late")]

    def test_fifo_ordering_of_items_and_getters(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(tag):
            value = yield store.get()
            got.append((tag, value))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield sim.timeout(1)
            store.put("x")
            store.put("y")

        sim.process(producer())
        sim.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_len_counts_queued_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
