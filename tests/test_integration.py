"""Cross-module integration tests: the full stack working together."""

import numpy as np
import pytest

from repro.core.device import RMSSD
from repro.core.interfaces import RMRuntime
from repro.models import MODEL_CONFIGS, build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.workloads.inputs import RequestGenerator


class TestAllModelsFullStack:
    """Every model of the zoo runs end to end on the device with
    numerically exact results."""

    @pytest.mark.parametrize("key", sorted(MODEL_CONFIGS))
    def test_device_matches_reference(self, key):
        config = get_config(key)
        rows = 128
        model = build_model(config, rows_per_table=rows, seed=11)
        device = RMSSD(model, lookups_per_table=min(config.lookups_per_table, 4))
        generator = RequestGenerator(config, rows, seed=3)
        request = generator.request(batch_size=2)
        # Clip lookups for heavy models to keep the DES fast.
        sparse = [
            [lookups[:4] if config.lookups_per_table > 4 else lookups
             for lookups in sample]
            for sample in request.sparse
        ]
        outputs, timing = device.infer_batch(request.dense, sparse)
        reference = model.forward(request.dense, sparse)
        np.testing.assert_allclose(outputs, reference, rtol=1e-5, atol=1e-6)
        assert timing.interval_ns > 0


class TestFragmentedLayoutFullStack:
    def test_fragmented_extents_end_to_end(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=96, seed=1)
        device = RMSSD(model, lookups_per_table=4, max_extent_pages=1)
        rng = np.random.default_rng(4)
        sparse = [
            [list(rng.integers(0, 96, size=4)) for _ in range(config.num_tables)]
        ]
        dense = rng.standard_normal((1, config.dense_dim)).astype(np.float32)
        outputs, _ = device.infer_batch(dense, sparse)
        np.testing.assert_allclose(
            outputs, model.forward(dense, sparse), rtol=1e-5, atol=1e-6
        )
        # The layout really is fragmented.
        assert len(device.layout.layout_for(0).handle.extents) > 1


class TestBlockIOCoexistence:
    """Section IV-A: block I/O and inference share the flash channels."""

    def _run_once(self, background_pages):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=64, seed=2)
        device = RMSSD(model, lookups_per_table=8)
        if background_pages:
            # Read pages from the laid-out tables' LBA range.
            device.start_background_block_reads(list(range(background_pages)))
        rng = np.random.default_rng(9)
        sparse = [
            [list(rng.integers(0, 64, size=8)) for _ in range(config.num_tables)]
        ]
        dense = rng.standard_normal((1, config.dense_dim)).astype(np.float32)
        outputs, timing = device.infer_batch(dense, sparse)
        return outputs, timing, device

    def test_block_reads_complete_and_slow_inference(self):
        clean_outputs, clean_timing, _ = self._run_once(0)
        busy_outputs, busy_timing, device = self._run_once(64)
        # Numerics unaffected by contention.
        np.testing.assert_array_equal(clean_outputs, busy_outputs)
        # Shared channels: embedding reads take longer under block load.
        assert busy_timing.emb_ns > clean_timing.emb_ns
        # The block reads actually happened and crossed to the host.
        assert device.stats.flash_page_reads == 64
        assert device.stats.host_read_bytes >= 64 * 4096

    def test_inference_only_has_no_page_reads(self):
        _, _, device = self._run_once(0)
        assert device.stats.flash_page_reads == 0


class TestRuntimePipelining:
    def test_pipelined_runtime_faster_and_equal_outputs(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=64, seed=5)

        def build_runtime():
            device = RMSSD(model, lookups_per_table=4)
            runtime = RMRuntime(device, user="it")
            for table_id in range(config.num_tables):
                runtime.rm_create_table(table_id)
            fds = [runtime.rm_open_table(t) for t in range(config.num_tables)]
            return runtime, fds

        rng = np.random.default_rng(6)
        batch = 6
        sparse = [
            [list(rng.integers(0, 64, size=4)) for _ in range(config.num_tables)]
            for _ in range(batch)
        ]
        dense = rng.standard_normal((batch, config.dense_dim)).astype(np.float32)

        runtime_a, fds_a = build_runtime()
        out_piped, res_piped = runtime_a.rm_infer(fds_a, dense, sparse, pipelined=True)
        runtime_b, fds_b = build_runtime()
        out_serial, res_serial = runtime_b.rm_infer(
            fds_b, dense, sparse, pipelined=False
        )
        np.testing.assert_array_equal(out_piped, out_serial)
        assert res_piped.total_ns <= res_serial.total_ns


class TestGeometrySensitivity:
    def test_more_channels_speed_up_lookups(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=64, seed=7)
        timings = {}
        for channels in (2, 8):
            geometry = SSDGeometry(
                channels=channels,
                dies_per_channel=2,
                planes_per_die=2,
                blocks_per_plane=64,
                pages_per_block=64,
            )
            device = RMSSD(model, lookups_per_table=16, geometry=geometry)
            rng = np.random.default_rng(1)
            sparse = [
                [list(rng.integers(0, 64, size=16)) for _ in range(config.num_tables)]
            ]
            dense = np.zeros((1, config.dense_dim), dtype=np.float32)
            _, timing = device.infer_batch(dense, sparse)
            timings[channels] = timing.emb_ns
        assert timings[8] < timings[2]
