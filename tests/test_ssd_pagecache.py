"""Tests for the LRU page cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ssd.pagecache import LRUPageCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUPageCache(capacity_entries=4)
        assert cache.access(1) is False
        assert cache.access(1) is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUPageCache(capacity_entries=2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # refresh 1; LRU is now 2
        cache.access(3)  # evicts 2
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache
        assert cache.evictions == 1

    def test_lookup_returns_value(self):
        cache = LRUPageCache(capacity_entries=2)
        cache.insert("k", "v")
        hit, value = cache.lookup("k")
        assert hit and value == "v"

    def test_zero_capacity_never_hits(self):
        cache = LRUPageCache(capacity_entries=0)
        for _ in range(10):
            assert cache.access(1) is False
        assert cache.hit_ratio == 0.0

    def test_byte_capacity_constructor(self):
        cache = LRUPageCache.with_byte_capacity(1 << 20, entry_size=4096)
        assert cache.capacity_entries == 256
        assert cache.capacity_bytes == 1 << 20

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUPageCache(capacity_entries=-1)

    def test_clear_and_reset(self):
        cache = LRUPageCache(capacity_entries=2)
        cache.access(1)
        cache.access(1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0

    def test_insert_refreshes_existing(self):
        cache = LRUPageCache(capacity_entries=2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.insert(1, "a2")  # refresh, no eviction
        cache.insert(3, "c")  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache
        assert cache.lookup(1)[1] == "a2"


class TestProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=32),
        keys=st.lists(st.integers(min_value=0, max_value=64), max_size=300),
    )
    def test_size_never_exceeds_capacity(self, capacity, keys):
        cache = LRUPageCache(capacity_entries=capacity)
        for key in keys:
            cache.access(key)
        assert len(cache) <= capacity

    @given(keys=st.lists(st.integers(min_value=0, max_value=10), max_size=200))
    def test_hits_plus_misses_equals_accesses(self, keys):
        cache = LRUPageCache(capacity_entries=4)
        for key in keys:
            cache.access(key)
        assert cache.hits + cache.misses == len(keys)

    @given(keys=st.lists(st.integers(min_value=0, max_value=200), max_size=300))
    def test_unbounded_cache_hit_count(self, keys):
        # With capacity >= universe, every repeat access hits.
        cache = LRUPageCache(capacity_entries=256)
        for key in keys:
            cache.access(key)
        assert cache.misses == len(set(keys))
        assert cache.hits == len(keys) - len(set(keys))

    def test_small_cache_worse_than_big_cache(self):
        # Locality shrinks with capacity: the SSD-S vs SSD-M effect.
        trace = [i % 50 for i in range(1000)]
        small = LRUPageCache(capacity_entries=10)
        big = LRUPageCache(capacity_entries=40)
        for key in trace:
            small.access(key)
            big.access(key)
        assert small.hit_ratio <= big.hit_ratio
