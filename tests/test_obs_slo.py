"""SLO engine: declarative objectives and burn-rate alerting.

The load-bearing pin: an *injected* SLA violation fires the alert in
exactly the window where it happened — and nowhere else.  Plus
rising-edge semantics (no re-fire while the condition holds, re-arm
after it clears), default fast/slow rule pairing, validation, and the
report shape embedded in the timeseries document.
"""

import pytest

from repro.obs import BurnRateRule, MetricsRegistry, Objective, SLOEngine, names

WINDOW_NS = 1000.0


def windowed_metrics(latency_by_window):
    """A registry whose serving-latency series has one observation per
    (window, latency) pair."""
    metrics = MetricsRegistry(window_ns=WINDOW_NS)
    histogram = metrics.histogram(names.METRIC_SERVING_LATENCY)
    for index, latencies in latency_by_window.items():
        for latency in latencies:
            histogram.observe(latency, t_ns=index * WINDOW_NS + 1.0)
    return metrics


def engine_with_objective(threshold_ns=1000.0, quantile=99.0):
    engine = SLOEngine(WINDOW_NS)
    engine.objective(
        names.SLO_SERVING_TAIL,
        names.METRIC_SERVING_LATENCY,
        quantile=quantile,
        threshold_ns=threshold_ns,
    )
    return engine


def test_injected_violation_fires_in_that_window_only():
    # Windows 0-9 comply; window 5 blows through the threshold.
    data = {i: [100.0] for i in range(10)}
    data[5] = [5000.0]
    metrics = windowed_metrics(data)
    engine = engine_with_objective()
    alerts = engine.alerts(metrics)
    assert alerts, "injected violation produced no alert"
    assert {a["window"] for a in alerts} == {5}
    assert {a["severity"] for a in alerts} == {
        names.ALERT_PAGE, names.ALERT_TICKET,
    }
    for alert in alerts:
        assert alert["type"] == names.ALERT_BURN_RATE
        assert alert["objective"] == names.SLO_SERVING_TAIL
        assert alert["t_ns"] == 6 * WINDOW_NS  # end of window 5


def test_no_violation_no_alert():
    metrics = windowed_metrics({i: [100.0] for i in range(30)})
    engine = engine_with_objective()
    assert engine.alerts(metrics) == []
    report = engine.evaluate(metrics)[0]
    assert all(w["ok"] for w in report["windows"])


def test_rising_edge_no_refire_while_held():
    # Consecutive violating windows: one page alert, at the first.
    data = {i: [100.0] for i in range(10)}
    data[5] = data[6] = [5000.0]
    metrics = windowed_metrics(data)
    engine = engine_with_objective()
    pages = [
        a for a in engine.alerts(metrics)
        if a["severity"] == names.ALERT_PAGE
    ]
    assert [a["window"] for a in pages] == [5]


def test_rearm_after_clear():
    # Two incidents separated by a long compliant gap: two page alerts.
    data = {i: [100.0] for i in range(30)}
    data[5] = [5000.0]
    data[20] = [5000.0]
    metrics = windowed_metrics(data)
    engine = engine_with_objective()
    pages = [
        a for a in engine.alerts(metrics)
        if a["severity"] == names.ALERT_PAGE
    ]
    assert [a["window"] for a in pages] == [5, 20]


def test_windows_without_data_comply():
    # A gap in completions (windows 3-7 empty) is not a violation.
    data = {0: [100.0], 1: [100.0], 2: [100.0], 8: [100.0]}
    metrics = windowed_metrics(data)
    engine = engine_with_objective()
    report = engine.evaluate(metrics)[0]
    by_index = {w["index"]: w for w in report["windows"]}
    assert by_index[5]["count"] == 0
    assert by_index[5]["ok"]
    assert engine.alerts(metrics) == []


def test_quantile_respects_threshold():
    # One 5 us outlier among 100 fast requests: invisible to a p50
    # objective, a violation for a p99.9 one (target rank 99.9 crosses
    # into the outlier's bucket; rank 99 stays in the fast bucket).
    data = {0: [100.0] * 99 + [5000.0]}
    metrics = windowed_metrics(data)
    p50_engine = engine_with_objective(quantile=50.0)
    tail_engine = engine_with_objective(quantile=99.9)
    assert p50_engine.evaluate(metrics)[0]["windows"][0]["ok"]
    assert not tail_engine.evaluate(metrics)[0]["windows"][0]["ok"]


def test_missing_metric_is_empty_report():
    metrics = MetricsRegistry(window_ns=WINDOW_NS)
    engine = engine_with_objective()
    report = engine.evaluate(metrics)[0]
    assert report["windows"] == []
    assert report["alerts"] == []


def test_report_dict_shape():
    metrics = windowed_metrics({0: [100.0]})
    engine = engine_with_objective()
    report = engine.report_dict(metrics)
    assert report["window_ns"] == WINDOW_NS
    assert [rule["severity"] for rule in report["rules"]] == [
        names.ALERT_PAGE, names.ALERT_TICKET,
    ]
    (objective,) = report["objectives"]
    assert objective["name"] == names.SLO_SERVING_TAIL
    assert objective["metric"] == names.METRIC_SERVING_LATENCY


def test_validation():
    with pytest.raises(ValueError):
        SLOEngine(0.0)
    with pytest.raises(ValueError):
        Objective("o", "m", quantile=0.0, threshold_ns=1.0)
    with pytest.raises(ValueError):
        Objective("o", "m", quantile=50.0, threshold_ns=0.0)
    with pytest.raises(ValueError):
        Objective("o", "m", quantile=50.0, threshold_ns=1.0, budget=0.0)
    with pytest.raises(ValueError):
        BurnRateRule("sev", long_windows=2, short_windows=4, burn_threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateRule("sev", long_windows=0, short_windows=0, burn_threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateRule("sev", long_windows=4, short_windows=2, burn_threshold=0.0)


def test_custom_rule_threshold():
    # A rule needing 100% of the short span violating fires only once
    # both trailing windows are bad.
    data = {i: [100.0] for i in range(10)}
    data[4] = data[5] = [5000.0]
    metrics = windowed_metrics(data)
    engine = SLOEngine(
        WINDOW_NS,
        rules=(
            BurnRateRule(
                severity=names.ALERT_PAGE,
                long_windows=2,
                short_windows=2,
                burn_threshold=100.0,  # 2/2/0.01 == 100: both bad
            ),
        ),
    )
    engine.objective(
        names.SLO_SERVING_TAIL,
        names.METRIC_SERVING_LATENCY,
        quantile=99.0,
        threshold_ns=1000.0,
    )
    assert [a["window"] for a in engine.alerts(metrics)] == [5]
