"""Tests for flash geometry and addressing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.geometry import PhysicalAddress, SSDGeometry


@pytest.fixture
def geo():
    return SSDGeometry(
        channels=4,
        dies_per_channel=4,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
        page_size=4096,
    )


class TestCapacity:
    def test_total_pages(self, geo):
        assert geo.total_pages == 4 * 4 * 2 * 8 * 16

    def test_capacity_bytes(self, geo):
        assert geo.capacity_bytes == geo.total_pages * 4096

    def test_table_ii_default_capacity_is_32gb(self):
        geo = SSDGeometry()
        assert geo.channels == 4
        assert geo.page_size == 4096
        assert geo.capacity_bytes == 32 * (1 << 30)

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            SSDGeometry(channels=0)


class TestAddressing:
    def test_consecutive_pages_stripe_over_channels(self, geo):
        channels = [geo.page_index_to_address(i).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_channel_stride_rotates_dies(self, geo):
        # After all channels are covered, the die index advances.
        a0 = geo.page_index_to_address(0)
        a4 = geo.page_index_to_address(4)
        assert a0.die == 0
        assert a4.die == 1
        assert a4.channel == 0

    def test_roundtrip_specific(self, geo):
        for page_index in [0, 1, 5, 100, geo.total_pages - 1]:
            addr = geo.page_index_to_address(page_index)
            assert geo.address_to_page_index(addr) == page_index

    @settings(max_examples=200)
    @given(page_index=st.integers(min_value=0, max_value=4 * 4 * 2 * 8 * 16 - 1))
    def test_roundtrip_property(self, page_index):
        geo = SSDGeometry(
            channels=4,
            dies_per_channel=4,
            planes_per_die=2,
            blocks_per_plane=8,
            pages_per_block=16,
            page_size=4096,
        )
        addr = geo.page_index_to_address(page_index)
        assert geo.address_to_page_index(addr) == page_index

    def test_out_of_range_page_rejected(self, geo):
        with pytest.raises(ValueError):
            geo.page_index_to_address(geo.total_pages)
        with pytest.raises(ValueError):
            geo.page_index_to_address(-1)

    def test_out_of_range_col_rejected(self, geo):
        with pytest.raises(ValueError):
            geo.page_index_to_address(0, col=4096)

    def test_byte_to_page(self, geo):
        assert geo.byte_to_page(0) == (0, 0)
        assert geo.byte_to_page(4096) == (1, 0)
        assert geo.byte_to_page(4096 + 128) == (1, 128)
        with pytest.raises(ValueError):
            geo.byte_to_page(-1)

    def test_all_fields_within_bounds(self, geo):
        for page_index in range(0, geo.total_pages, 97):
            a = geo.page_index_to_address(page_index)
            assert 0 <= a.channel < geo.channels
            assert 0 <= a.die < geo.dies_per_channel
            assert 0 <= a.plane < geo.planes_per_die
            assert 0 <= a.block < geo.blocks_per_plane
            assert 0 <= a.page < geo.pages_per_block

    def test_page_key_ignores_col(self):
        a = PhysicalAddress(0, 1, 0, 2, 3, col=128)
        b = PhysicalAddress(0, 1, 0, 2, 3, col=256)
        assert a.page_key() == b.page_key()


class TestValidation:
    def test_negative_address_fields_rejected(self):
        with pytest.raises(ValueError, match="die"):
            PhysicalAddress(channel=0, die=-1, plane=0, block=0, page=0)
        with pytest.raises(ValueError, match="col"):
            PhysicalAddress(channel=0, die=0, plane=0, block=0, page=0, col=-4)

    def test_zero_and_negative_geometry_rejected(self):
        with pytest.raises(ValueError, match="channels"):
            SSDGeometry(channels=0)
        with pytest.raises(ValueError, match="page_size"):
            SSDGeometry(page_size=-4096)
