"""Tests for the flash translation layer."""

import pytest

from repro.ssd.ftl import FlashTranslationLayer, LinearMapping, PageMapping
from repro.ssd.geometry import SSDGeometry


@pytest.fixture
def geo():
    return SSDGeometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=1,
        blocks_per_plane=4,
        pages_per_block=8,
    )


class TestLinearMapping:
    def test_identity(self, geo):
        mapping = LinearMapping(geo)
        for lba in [0, 1, geo.total_pages - 1]:
            assert mapping.translate(lba) == lba

    def test_out_of_range_rejected(self, geo):
        mapping = LinearMapping(geo)
        with pytest.raises(ValueError):
            mapping.translate(geo.total_pages)
        with pytest.raises(ValueError):
            mapping.translate(-1)

    def test_map_write_is_identity(self, geo):
        mapping = LinearMapping(geo)
        assert mapping.map_write(17) == 17


class TestPageMapping:
    def test_write_allocates_sequentially(self, geo):
        mapping = PageMapping(geo)
        assert mapping.map_write(100) == 0
        assert mapping.map_write(5) == 1
        assert mapping.map_write(100) == 0  # in-place reuse

    def test_translate_follows_writes(self, geo):
        mapping = PageMapping(geo)
        mapping.map_write(42)
        assert mapping.translate(42) == 0

    def test_unmapped_read_raises(self, geo):
        mapping = PageMapping(geo)
        with pytest.raises(KeyError):
            mapping.translate(3)

    def test_device_full(self, geo):
        mapping = PageMapping(geo)
        for lba in range(geo.total_pages):
            mapping.map_write(lba)
        with pytest.raises(RuntimeError):
            mapping.map_write(geo.total_pages)

    def test_mapped_pages_counter(self, geo):
        mapping = PageMapping(geo)
        mapping.map_write(1)
        mapping.map_write(2)
        mapping.map_write(1)
        assert mapping.mapped_pages == 2


class TestFacade:
    def test_default_is_linear(self, geo):
        ftl = FlashTranslationLayer(geo)
        assert ftl.translate(9) == 9

    def test_byte_address_translation(self, geo):
        ftl = FlashTranslationLayer(geo)
        physical, col = ftl.translate_byte_address(2 * 4096 + 300)
        assert physical == 2
        assert col == 300

    def test_custom_mapping_honoured(self, geo):
        ftl = FlashTranslationLayer(geo, mapping=PageMapping(geo))
        ftl.map_write(7)
        assert ftl.translate(7) == 0

    def test_lookup_cycles_default(self, geo):
        assert FlashTranslationLayer(geo).lookup_cycles == 8
