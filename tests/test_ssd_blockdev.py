"""Tests for the block device / extent file layer."""

import pytest

from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice, Extent
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry


def make_device(max_extent_pages=None):
    sim = Simulator()
    geo = SSDGeometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=16,
    )
    return BlockDevice(SSDController(sim, geo), max_extent_pages=max_extent_pages)


class TestFiles:
    def test_create_and_open(self):
        dev = make_device()
        handle = dev.create_file("table0", 10000)
        assert dev.open_file("table0") is handle
        assert handle.size_bytes == 10000
        # 10000 B -> 3 pages.
        assert sum(e.page_count for e in handle.extents) == 3

    def test_duplicate_create_rejected(self):
        dev = make_device()
        dev.create_file("t", 100)
        with pytest.raises(ValueError):
            dev.create_file("t", 100)

    def test_open_missing_raises(self):
        dev = make_device()
        with pytest.raises(FileNotFoundError):
            dev.open_file("nope")

    def test_fragmented_allocation(self):
        dev = make_device(max_extent_pages=2)
        handle = dev.create_file("frag", 5 * 4096)
        assert [e.page_count for e in handle.extents] == [2, 2, 1]
        # Extents are disjoint and ordered.
        for a, b in zip(handle.extents, handle.extents[1:]):
            assert a.end_lba <= b.start_lba

    def test_device_full(self):
        dev = make_device()
        capacity = dev.controller.geometry.capacity_bytes
        dev.create_file("big", capacity)
        with pytest.raises(RuntimeError):
            dev.create_file("more", 4096)

    def test_extent_byte_range(self):
        extent = Extent(start_lba=3, page_count=2)
        assert extent.byte_range(4096) == (3 * 4096, 5 * 4096)


class TestReadWrite:
    def test_roundtrip_within_extent(self):
        dev = make_device()
        dev.create_file("t", 4096 * 4)
        payload = bytes(range(256)) * 16  # 4096 B
        dev.write_file("t", payload, offset=1000)
        assert dev.read_file("t", 1000, len(payload)) == payload

    def test_roundtrip_across_fragmented_extents(self):
        dev = make_device(max_extent_pages=1)
        dev.create_file("a", 4096)  # interleave allocations
        dev.create_file("t", 4096 * 3)
        payload = b"Z" * (4096 * 2)
        dev.write_file("t", payload, offset=2048)
        assert dev.read_file("t", 2048, len(payload)) == payload

    def test_write_beyond_eof_rejected(self):
        dev = make_device()
        dev.create_file("t", 100)
        with pytest.raises(ValueError):
            dev.write_file("t", b"x" * 200)

    def test_read_beyond_eof_rejected(self):
        dev = make_device()
        dev.create_file("t", 100)
        with pytest.raises(ValueError):
            dev.read_file("t", 50, 100)

    def test_write_counts_host_traffic(self):
        dev = make_device()
        dev.create_file("t", 4096)
        dev.write_file("t", b"x" * 1000)
        assert dev.controller.stats.host_write_bytes == 1000


class TestTimedReads:
    def test_paged_read_returns_data(self):
        dev = make_device()
        dev.create_file("t", 4096 * 4)
        dev.write_file("t", b"hello world", offset=5000)
        proc = dev.sim.process(dev.read_file_pages_proc("t", 5000, 11))
        dev.sim.run()
        assert proc.value == b"hello world"

    def test_paged_read_amplification(self):
        dev = make_device()
        dev.create_file("t", 4096 * 4)
        stats = dev.controller.stats
        stats.reset()
        # 128 B read costs one whole page over the host link.
        proc = dev.sim.process(dev.read_file_pages_proc("t", 256, 128))
        dev.sim.run()
        assert len(proc.value) == 128
        assert stats.host_read_bytes == 4096
        stats.record_useful(128)
        assert stats.read_amplification == pytest.approx(32.0)

    def test_device_offset_of_maps_through_extents(self):
        dev = make_device(max_extent_pages=1)
        dev.create_file("pad", 4096)
        handle = dev.create_file("t", 4096 * 2)
        off0 = dev.device_offset_of("t", 0)
        off1 = dev.device_offset_of("t", 4096)
        assert off0 == handle.extents[0].start_lba * 4096
        assert off1 == handle.extents[1].start_lba * 4096
