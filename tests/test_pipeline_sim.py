"""Tests for the DES pipeline simulator and its agreement with Eq. 1."""

import pytest

from repro.core.lookup_engine import flash_read_cycles
from repro.core.pipeline_sim import PipelineSimulator
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


class TestPipelineBasics:
    def test_single_batch_latency_is_stage_sum(self):
        pipe = PipelineSimulator(emb_ns=100, bot_ns=60, top_ns=40)
        result = pipe.run(1)
        # emb || bot, then top: max(100, 60) + 40.
        assert result.makespan_ns == pytest.approx(140)
        assert result.records[0].latency_ns == pytest.approx(140)

    def test_steady_state_interval_is_bottleneck_stage(self):
        pipe = PipelineSimulator(emb_ns=100, bot_ns=60, top_ns=40)
        result = pipe.run(20)
        assert result.steady_interval_ns == pytest.approx(100, rel=0.01)

    def test_top_bound_pipeline(self):
        pipe = PipelineSimulator(emb_ns=10, bot_ns=10, top_ns=100)
        result = pipe.run(20)
        assert result.steady_interval_ns == pytest.approx(100, rel=0.01)

    def test_zero_bottom_stage(self):
        # NCF/WnD have no bottom chain.
        pipe = PipelineSimulator(emb_ns=50, bot_ns=0, top_ns=20)
        result = pipe.run(10)
        assert result.steady_interval_ns == pytest.approx(50, rel=0.02)

    def test_open_loop_arrivals_respected(self):
        pipe = PipelineSimulator(emb_ns=10, bot_ns=0, top_ns=5)
        result = pipe.run(5, arrival_interval_ns=100)
        # Underloaded: completions track arrivals, not the bottleneck.
        assert result.steady_interval_ns == pytest.approx(100, rel=0.01)
        assert result.mean_latency_ns == pytest.approx(15, rel=0.01)

    def test_jittered_service_times(self):
        # Alternating slow/fast embedding: interval averages out.
        pipe = PipelineSimulator(
            emb_ns=lambda i: 150 if i % 2 else 50, bot_ns=0, top_ns=10
        )
        result = pipe.run(40)
        assert result.steady_interval_ns == pytest.approx(100, rel=0.05)

    def test_invalid_batches(self):
        with pytest.raises(ValueError):
            PipelineSimulator(1, 1, 1).run(0)

    def test_ordering_preserved(self):
        pipe = PipelineSimulator(emb_ns=10, bot_ns=5, top_ns=3)
        result = pipe.run(8)
        completions = [r.top_done_ns for r in result.records]
        assert completions == sorted(completions)


class TestAgreementWithEq1:
    """The DES pipeline reproduces the analytic interval for the real
    kernel-searched models."""

    @pytest.mark.parametrize("key", ["rmc1", "rmc2", "rmc3", "ncf", "wnd"])
    def test_steady_interval_matches_analytic(self, key):
        config = get_config(key)
        model = build_model(config, rows_per_table=32)
        dec = decompose_model(model, config.lookups_per_table)
        flash = flash_read_cycles(
            dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
            config.ev_size,
        )
        result = kernel_search(dec, flash)
        pipe = PipelineSimulator.from_stage_times(result.times)
        run = pipe.run(16)
        analytic_ns = result.times.interval * 5.0
        assert run.steady_interval_ns == pytest.approx(analytic_ns, rel=0.02)

    def test_des_flash_times_through_pipeline_match_device_qps(self):
        """Feeding *measured* per-batch flash times into the pipeline
        simulator reproduces the device's own workload throughput."""
        import numpy as np

        from repro.core.device import RMSSD

        config = get_config("rmc1")
        model = build_model(config, rows_per_table=256, seed=0)
        device = RMSSD(model, lookups_per_table=8)
        rng = np.random.default_rng(3)
        emb_times = []
        stage_bot = stage_top = 0.0
        batches = 8
        for _ in range(batches):
            sparse = [
                [list(rng.integers(0, 256, size=8))
                 for _ in range(config.num_tables)]
            ]
            dense = np.zeros((1, config.dense_dim), dtype=np.float32)
            _, timing = device.infer_batch(dense, sparse)
            emb_times.append(timing.emb_ns)
            stage_bot, stage_top = timing.bot_ns, timing.top_ns
        pipe = PipelineSimulator(
            emb_ns=lambda i: emb_times[i], bot_ns=stage_bot, top_ns=stage_top
        )
        run = pipe.run(batches)
        # Embedding-bound: the pipeline's steady interval equals the
        # mean measured flash time.
        assert run.steady_interval_ns == pytest.approx(
            sum(emb_times[2:]) / (batches - 2), rel=0.15
        )

    def test_latency_matches_analytic(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=32)
        dec = decompose_model(model, config.lookups_per_table)
        flash = flash_read_cycles(
            dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(),
            config.ev_size,
        )
        result = kernel_search(dec, flash)
        pipe = PipelineSimulator.from_stage_times(result.times)
        run = pipe.run(1)
        assert run.records[0].latency_ns == pytest.approx(
            result.times.latency * 5.0, rel=0.01
        )
