"""Profiler determinism and DES-vs-fastpath byte equivalence.

The profiler inherits the repo's two strongest contracts:

* **determinism** — a seeded run exports byte-identical profile JSON
  every time (simulated clock only; sorted keys and records);
* **path equivalence** — the vectorized fast path records the *same*
  service triples, busy intervals and queue samples as the DES (same
  float arithmetic), so the two paths' exports are byte-identical too.

Plus the acceptance invariant: on the optimized RM-SSD design the
embedding stage is the named bottleneck for RMC1/RMC2, while the
RM-SSD-Naive design trips the ``mlp-dominates-embedding`` warning.
"""

import pytest

from repro.baselines import RMSSDBackend
from repro.models import build_model, get_config
from repro.obs import Profiler
from repro.ssd.vcache import VectorCache
from repro.workloads.inputs import RequestGenerator

ROWS = 64
REQUESTS = 2
MODELS = ("rmc1", "rmc2", "rmc3")


def profiled_run(
    tmp_path, model_name, tag, fast, vcache_vectors=0, mlp_design="optimized"
):
    """One seeded device run; returns (profiler, exported bytes)."""
    config = get_config(model_name)
    model = build_model(config, rows_per_table=ROWS)
    profiler = Profiler()
    backend = RMSSDBackend(
        model,
        config.lookups_per_table,
        mlp_design=mlp_design,
        use_des=True,
        fastpath=fast,
        vcache=VectorCache(vcache_vectors) if vcache_vectors else None,
        profiler=profiler,
    )
    generator = RequestGenerator(
        config, ROWS, hot_access_fraction=0.65, seed=0
    )
    backend.run(generator.requests(REQUESTS, batch_size=1), compute=False)
    profiler.set_meta(model=model_name, rows=ROWS, seed=0)
    path = profiler.export_json(str(tmp_path / f"{tag}.json"))
    with open(path, "rb") as handle:
        return profiler, handle.read()


@pytest.mark.parametrize("model_name", MODELS)
def test_des_and_fast_profiles_byte_identical(tmp_path, model_name):
    _, des = profiled_run(tmp_path, model_name, "des", fast=False)
    _, fast = profiled_run(tmp_path, model_name, "fast", fast=True)
    assert fast == des


def test_vcache_profiles_byte_identical(tmp_path):
    _, des = profiled_run(
        tmp_path, "rmc1", "des", fast=False, vcache_vectors=128
    )
    profiler, fast = profiled_run(
        tmp_path, "rmc1", "fast", fast=True, vcache_vectors=128
    )
    assert fast == des
    assert "vcache" in profiler.resource_report()


def test_repeated_runs_byte_identical(tmp_path):
    _, first = profiled_run(tmp_path, "rmc1", "first", fast=True)
    _, second = profiled_run(tmp_path, "rmc1", "second", fast=True)
    assert second == first


def test_paths_agree_on_utilization(tmp_path):
    des_profiler, _ = profiled_run(tmp_path, "rmc2", "des", fast=False)
    fast_profiler, _ = profiled_run(tmp_path, "rmc2", "fast", fast=True)
    assert fast_profiler.utilizations() == des_profiler.utilizations()
    assert fast_profiler.elapsed_ns() == pytest.approx(
        des_profiler.elapsed_ns(), rel=0, abs=0
    )


@pytest.mark.parametrize("model_name", MODELS)
def test_busy_never_exceeds_elapsed(tmp_path, model_name):
    profiler, _ = profiled_run(tmp_path, model_name, "run", fast=True)
    elapsed = profiler.elapsed_ns()
    assert elapsed > 0
    report = profiler.resource_report(elapsed)
    assert report  # flash dies, buses, FTL, EV-Sum, MLP, host I/O
    for name, entry in report.items():
        assert 0.0 <= entry["utilization"] <= 1.0, name
        assert entry["busy_ns"] <= elapsed
    for group in profiler.channel_report(elapsed).values():
        assert 0.0 <= group["utilization"] <= 1.0


@pytest.mark.parametrize("model_name", ("rmc1", "rmc2"))
def test_optimized_design_names_embedding_bottleneck(tmp_path, model_name):
    profiler, _ = profiled_run(tmp_path, model_name, "run", fast=True)
    report = profiler.bottleneck_report()
    assert report["bottleneck_stage"] == "emb"
    assert report["invariant"]["holds"] is True
    assert report["warnings"] == []


def test_naive_design_trips_mlp_warning(tmp_path):
    # RMC3's big MLPs on the serialized naive kernel dominate the
    # embedding stage — the Fig. 12c failure mode the invariant guards.
    profiler, _ = profiled_run(
        tmp_path, "rmc3", "naive", fast=True, mlp_design="naive"
    )
    report = profiler.bottleneck_report()
    assert report["invariant"]["holds"] is False
    assert report["serialized_batches"] == report["batches"] > 0
    (warning,) = report["warnings"]
    assert warning["type"] == "mlp-dominates-embedding"
    assert warning["ratio"] > 1.0
