"""Differential tests: closed-form serving replay vs the DES reference.

``repro/core/pipeline_fast.py`` promises *bitwise* equality with the
event-driven pipeline for index-pure stage times — every
:class:`BatchRecord` field, the makespan, and the utilization
profiler's recorded triples.  These tests enforce the promise across
arrival processes (saturated, fixed-rate, Poisson), degenerate stage
times (zero-length bottom/top chains), per-batch jitter callables, and
property-based exploration with hypothesis.

The ``smoke``-named subset is run by ``tools/check.sh`` under
``RMSSD_SANITIZE=1``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from benchmarks.runner import run_parallel, sleep_echo_task
from repro.core import pipeline_fast
from repro.core.pipeline_sim import PipelineSimulator
from repro.fpga.compose import StageTimes
from repro.host.serving import ServingSimulator
from repro.obs.profiler import Profiler

RECORD_FIELDS = (
    "index",
    "arrival_ns",
    "emb_start_ns",
    "emb_done_ns",
    "bot_start_ns",
    "bot_done_ns",
    "top_start_ns",
    "top_done_ns",
)


def run_both(emb, bot, top, arrivals):
    """One DES run and one fast run over identical inputs."""
    results = {}
    for fast in (False, True):
        sim = PipelineSimulator(emb, bot, top)
        results[fast] = sim.run(
            len(arrivals), arrival_times_ns=list(arrivals), fast=fast
        )
    assert results[False].path == "des"
    assert results[True].path == "fast"
    return results[False], results[True]


def assert_bitwise(des, fast):
    # Exact float equality is the point: the replay must be bitwise.
    assert des.makespan_ns == fast.makespan_ns  # lint: ok[R2]
    assert len(des.records) == len(fast.records)
    for a, b in zip(des.records, fast.records):
        for field in RECORD_FIELDS:
            assert getattr(a, field) == getattr(b, field), field


def poisson_arrivals(n, mean_gap, seed):
    rng = np.random.default_rng(seed)
    return np.add.accumulate(rng.exponential(mean_gap, size=n)).tolist()


# ----------------------------------------------------------------------
# Core arrival processes
# ----------------------------------------------------------------------
def test_smoke_saturated():
    # All arrivals at t=0: the pipeline-fill case the analytic model
    # (Eq. 1) describes; a single busy run per stage.
    des, fast = run_both(300.0, 120.0, 80.0, [0.0] * 100)
    assert_bitwise(des, fast)


def test_smoke_fixed_rate():
    des, fast = run_both(300.0, 120.0, 80.0, [i * 250.0 for i in range(100)])
    assert_bitwise(des, fast)


@pytest.mark.parametrize("utilization", (0.2, 0.6, 0.95, 1.5))
@pytest.mark.parametrize("batches", (1, 5, 64, 200))
def test_poisson_arrivals(utilization, batches):
    arrivals = poisson_arrivals(batches, 300.0 / utilization, seed=batches)
    des, fast = run_both(300.0, 120.0, 80.0, arrivals)
    assert_bitwise(des, fast)


def test_negative_arrivals_serve_at_zero():
    # DES flows bootstrap at clock 0, so nominally negative arrivals
    # are served at t=0 (and the latency includes the difference).
    des, fast = run_both(100.0, 50.0, 25.0, [-500.0, -100.0, 0.0, 30.0])
    assert_bitwise(des, fast)
    assert fast.records[0].emb_start_ns == 0.0  # lint: ok[R2]


# ----------------------------------------------------------------------
# Degenerate stage times
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "bot,top", ((0.0, 50.0), (90.0, 0.0), (0.0, 0.0))
)
def test_smoke_zero_length_stages(bot, top):
    # Zero-length bottom/top chains skip the stage server entirely in
    # the DES (no serve call); the replay must mirror that, including
    # in the profiler (no triple recorded).
    arrivals = poisson_arrivals(150, 150.0, seed=3)
    des, fast = run_both(200.0, bot, top, arrivals)
    assert_bitwise(des, fast)


def test_negative_service_raises_on_both_paths():
    for fast in (False, True):
        sim = PipelineSimulator(lambda i: -1.0, 10.0, 10.0)
        with pytest.raises(ValueError, match="negative service duration"):
            sim.run(3, arrival_times_ns=[0.0, 1.0, 2.0], fast=fast)


# ----------------------------------------------------------------------
# Jitter callables and service-order stress
# ----------------------------------------------------------------------
def test_jitter_callables():
    # Index-pure callables — the documented fast-path contract.
    arrivals = poisson_arrivals(200, 180.0, seed=11)
    des, fast = run_both(
        lambda i: 100.0 + (i % 7) * 13.0,
        lambda i: (i % 3) * 40.0,
        lambda i: 20.0 + (i % 5),
        arrivals,
    )
    assert_bitwise(des, fast)


def test_bot_spike_reorders_top_service():
    # A huge bottom stage on the first batch (zero on the rest, so
    # they skip the shared bottom server rather than queueing behind
    # the spike) makes later batches ready for the top stage *before*
    # it: the DES serves top in ready order, not index order, and the
    # replay's stable argsort must agree.
    des, fast = run_both(
        50.0, lambda i: 5000.0 if i == 0 else 0.0, 30.0,
        [0.0, 10.0, 20.0, 30.0, 40.0],
    )
    assert_bitwise(des, fast)
    assert fast.records[0].top_start_ns > fast.records[4].top_start_ns


def test_heavy_ties_stress():
    # Coinciding arrivals and identical durations force every
    # tie-break the DES has; 40 randomized trials.
    rng = np.random.default_rng(7)
    for _ in range(40):
        n = int(rng.integers(1, 120))
        arrivals = np.sort(
            rng.choice([0.0, 50.0, 100.0, 333.33], size=n)
            * rng.integers(0, 4, size=n)
        ).tolist()
        des, fast = run_both(
            float(rng.integers(1, 300)),
            float(rng.choice([0.0, 60.0, 120.0])),
            float(rng.choice([0.0, 30.0, 80.0])),
            arrivals,
        )
        assert_bitwise(des, fast)


# ----------------------------------------------------------------------
# serve_chain: scan vs reference loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("utilization", (0.2, 0.95, 2.0))
def test_serve_chain_scan_matches_loop(utilization):
    rng = np.random.default_rng(int(utilization * 10))
    arrivals = np.add.accumulate(
        rng.exponential(100.0 / utilization, size=500)
    )
    durations = rng.choice([0.0, 50.0, 100.0, 100.0], size=500)
    loop = pipeline_fast.serve_chain(arrivals, durations, vectorized=False)
    scan = pipeline_fast.serve_chain(arrivals, durations, vectorized=True)
    for a, b in zip(loop, scan):
        assert a.tobytes() == b.tobytes()


def test_serve_chain_heuristic_is_pure_dispatch():
    # The default dispatch (backlogged => scan) must be unobservable.
    arrivals = np.zeros(pipeline_fast.VECTOR_MIN_JOBS, dtype=np.float64)
    durations = np.full(arrivals.size, 10.0)
    auto = pipeline_fast.serve_chain(arrivals, durations)
    loop = pipeline_fast.serve_chain(arrivals, durations, vectorized=False)
    for a, b in zip(auto, loop):
        assert a.tobytes() == b.tobytes()


def test_serve_chain_shape_mismatch():
    with pytest.raises(ValueError, match="one duration per arrival"):
        pipeline_fast.serve_chain(np.zeros(3), np.zeros(2))


# ----------------------------------------------------------------------
# Profiler parity (byte-identical exports)
# ----------------------------------------------------------------------
def _profile_bytes(tmp_path, label, fast, arrivals):
    profiler = Profiler()
    sim = PipelineSimulator(
        300.0, lambda i: (i % 4) * 45.0, 80.0, profiler=profiler
    )
    sim.run(len(arrivals), arrival_times_ns=list(arrivals), fast=fast)
    path = tmp_path / f"profile_{label}.json"
    profiler.export_json(str(path))
    return path.read_bytes()


def test_smoke_profiles_byte_identical(tmp_path):
    arrivals = poisson_arrivals(120, 200.0, seed=5)
    des = _profile_bytes(tmp_path, "des", False, arrivals)
    fast = _profile_bytes(tmp_path, "fast", True, arrivals)
    assert des == fast


# ----------------------------------------------------------------------
# Serving layer smoke: one sweep point through both paths
# ----------------------------------------------------------------------
def test_smoke_sweep_point_bitwise():
    times = StageTimes(temb=60, tbot=24, ttop=16, nbatch=2, flash_cycles=40)
    serving = ServingSimulator(times, nbatch=times.nbatch, seed=7)
    qps = 0.5 * serving.saturation_qps
    des = serving.offered_load(qps, queries=60, fast=False)
    fast = serving.offered_load(qps, queries=60, fast=True)
    for field in (
        "offered_qps", "achieved_qps", "p50_ns", "p95_ns", "p99_ns",
        "mean_ns", "mean_queue_ns", "latencies_ns",
    ):
        assert getattr(des, field) == getattr(fast, field), field


def test_offered_load_seed_override():
    # seed=None reuses the constructor seed (common random numbers:
    # identical gap pattern per sweep point); an explicit seed draws an
    # independent arrival process.
    times = StageTimes(temb=60, tbot=24, ttop=16, nbatch=1, flash_cycles=40)
    serving = ServingSimulator(times, nbatch=1, seed=7)
    qps = 0.5 * serving.saturation_qps
    crn_a = serving.offered_load(qps, queries=40)
    crn_b = serving.offered_load(qps, queries=40)
    assert crn_a.latencies_ns == crn_b.latencies_ns  # lint: ok[R2]
    independent = serving.offered_load(qps, queries=40, seed=123)
    assert independent.latencies_ns != crn_a.latencies_ns  # lint: ok[R2]


def test_sla_search_exposes_probes():
    times = StageTimes(temb=60, tbot=24, ttop=16, nbatch=1, flash_cycles=40)
    serving = ServingSimulator(times, nbatch=1, seed=7)
    result = serving.sla_search(
        sla_ns=5.0 * times.latency * 5.0, queries=40
    )
    # Trickle probe first, then the bisection in evaluation order.
    assert len(result.points) >= 2
    assert result.points[0].offered_qps == pytest.approx(
        0.01 * serving.saturation_qps
    )
    assert result.max_qps <= serving.saturation_qps


# ----------------------------------------------------------------------
# Hypothesis property
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    emb=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    bot=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    top=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)
def test_property_bitwise_equivalence(gaps, emb, bot, top):
    arrivals = np.add.accumulate(np.asarray(gaps, dtype=np.float64)).tolist()
    des, fast = run_both(emb, bot, top, arrivals)
    assert_bitwise(des, fast)


# ----------------------------------------------------------------------
# Env-flag gating (shared with the lookup fast path)
# ----------------------------------------------------------------------
def test_env_flag_gates_default(monkeypatch):
    monkeypatch.setenv("RMSSD_FASTPATH", "0")
    sim = PipelineSimulator(10.0, 5.0, 2.0)
    assert sim.run(3).path == "des"
    monkeypatch.setenv("RMSSD_FASTPATH", "1")
    assert sim.run(3).path == "fast"


def test_explicit_fast_argument_overrides_env(monkeypatch):
    monkeypatch.setenv("RMSSD_FASTPATH", "0")
    sim = PipelineSimulator(10.0, 5.0, 2.0)
    assert sim.run(3, fast=True).path == "fast"
    monkeypatch.setenv("RMSSD_FASTPATH", "1")
    assert sim.run(3, fast=False).path == "des"


# ----------------------------------------------------------------------
# Parallel bench runner: deterministic merge
# ----------------------------------------------------------------------
def test_runner_merge_order_survives_inverted_completion():
    # Earlier submissions sleep longer, so with 2 workers the results
    # complete out of order; the merge must restore submission order.
    tasks = [("a", 0.3), ("b", 0.15), ("c", 0.0), ("d", 0.0)]
    assert run_parallel(sleep_echo_task, tasks, processes=2) == [
        "a", "b", "c", "d",
    ]


def test_runner_sequential_fallback():
    tasks = [("x", 0.0), ("y", 0.0)]
    assert run_parallel(sleep_echo_task, tasks, processes=1) == ["x", "y"]
    assert run_parallel(sleep_echo_task, [("solo", 0.0)]) == ["solo"]
