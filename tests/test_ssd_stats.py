"""Tests for I/O statistics and the Table IV / Fig. 3 metrics."""

import pytest

from repro.ssd.stats import IOStatistics


class TestCounters:
    def test_page_read_to_host(self):
        stats = IOStatistics()
        stats.record_page_read(4096)
        assert stats.host_read_bytes == 4096
        assert stats.flash_bus_bytes == 4096
        assert stats.flash_page_reads == 1

    def test_page_read_internal(self):
        stats = IOStatistics()
        stats.record_page_read(4096, to_host=False)
        assert stats.host_read_bytes == 0
        assert stats.flash_bus_bytes == 4096

    def test_vector_read(self):
        stats = IOStatistics()
        stats.record_vector_read(128)
        assert stats.flash_vector_reads == 1
        assert stats.flash_bus_bytes == 128
        assert stats.host_read_bytes == 0

    def test_reset(self):
        stats = IOStatistics()
        stats.record_page_read(4096)
        stats.record_useful(100)
        stats.reset()
        assert stats.host_read_bytes == 0
        assert stats.useful_bytes == 0


class TestMetrics:
    def test_read_amplification_fig3_style(self):
        # 1 useful 128 B vector per 4 KB page -> 32x amplification.
        stats = IOStatistics()
        for _ in range(100):
            stats.record_page_read(4096)
            stats.record_useful(128)
        assert stats.read_amplification == pytest.approx(32.0)

    def test_amplification_zero_when_no_useful_bytes(self):
        assert IOStatistics().read_amplification == 0.0

    def test_flash_amplification_differs_for_vector_reads(self):
        stats = IOStatistics()
        stats.record_vector_read(128)
        stats.record_useful(128)
        assert stats.flash_amplification == pytest.approx(1.0)

    def test_reduction_factor_table_iv_style(self):
        baseline = IOStatistics()
        baseline.record_host_transfer(read_bytes=10_000_000)
        optimized = IOStatistics()
        optimized.record_host_transfer(read_bytes=64)
        assert optimized.reduction_factor_vs(baseline) == pytest.approx(156250.0)

    def test_reduction_factor_infinite_when_zero_traffic(self):
        baseline = IOStatistics()
        baseline.record_host_transfer(read_bytes=100)
        assert IOStatistics().reduction_factor_vs(baseline) == float("inf")

    def test_cache_hit_ratio(self):
        stats = IOStatistics()
        stats.cache_hits = 3
        stats.cache_misses = 1
        assert stats.cache_hit_ratio == pytest.approx(0.75)

    def test_as_dict_contains_derived(self):
        data = IOStatistics().as_dict()
        assert "read_amplification" in data
        assert "cache_hit_ratio" in data
