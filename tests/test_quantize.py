"""Tests for the int8 quantization extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import build_model, get_config
from repro.models.layers import FCLayer
from repro.models.mlp import MLP
from repro.models.quantize import (
    QuantizationReport,
    compare_outputs,
    dequantize_layer,
    int8_resource_estimate,
    quantize_dlrm,
    quantize_mlp,
    quantize_weight,
)


class TestQuantizeWeight:
    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        weight = rng.standard_normal((32, 16)).astype(np.float32)
        q, scale = quantize_weight(weight)
        restored = q.astype(np.float32) * scale
        assert np.max(np.abs(restored - weight)) <= scale / 2 + 1e-7

    def test_zero_weight(self):
        q, scale = quantize_weight(np.zeros((4, 4), dtype=np.float32))
        assert np.all(q == 0)
        assert scale == 1.0

    def test_range_is_int8(self):
        weight = np.array([[-10.0, 10.0]], dtype=np.float32)
        q, _ = quantize_weight(weight)
        assert q.min() == -127 and q.max() == 127

    @settings(max_examples=50)
    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=4, max_size=64,
        )
    )
    def test_quantization_error_property(self, values):
        weight = np.array(values, dtype=np.float32).reshape(-1, 1)
        q, scale = quantize_weight(weight)
        restored = q.astype(np.float32) * scale
        assert np.max(np.abs(restored - weight)) <= scale / 2 + 1e-5


class TestQuantizeLayers:
    def test_dequantized_layer_close_to_original(self):
        layer = FCLayer(16, 8, seed=1)
        q_layer = dequantize_layer(layer)
        x = np.random.default_rng(2).standard_normal(16).astype(np.float32)
        np.testing.assert_allclose(q_layer(x), layer(x), atol=0.05)

    def test_bias_preserved_exactly(self):
        layer = FCLayer(4, 2, bias=np.array([1.5, -2.5], dtype=np.float32))
        assert np.array_equal(dequantize_layer(layer).bias, layer.bias)

    def test_quantize_mlp_keeps_shapes(self):
        mlp = MLP.from_widths(32, [16, 8, 1])
        q = quantize_mlp(mlp)
        assert q.shapes() == mlp.shapes()

    def test_quantize_dlrm_shares_tables(self):
        model = build_model(get_config("rmc1"), rows_per_table=32)
        q = quantize_dlrm(model)
        assert q.tables is model.tables  # embeddings stay fp32
        assert q.name.endswith("-int8")
        assert q.pooling == model.pooling


class TestCompare:
    def test_identical_outputs_zero_error(self):
        out = np.array([0.1, 0.5, 0.9])
        report = compare_outputs(out, out)
        assert report.max_abs_error == 0.0
        assert report.flipped_rankings == 0

    def test_rank_flip_detected(self):
        reference = np.array([0.3, 0.4])
        quantized = np.array([0.4, 0.3])
        report = compare_outputs(reference, quantized)
        assert report.flipped_rankings == 1
        assert report.flip_rate == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare_outputs(np.zeros(3), np.zeros(4))

    def test_dlrm_quantization_small_but_nonzero_error(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=64, seed=5)
        quantized = quantize_dlrm(model)
        rng = np.random.default_rng(6)
        dense = rng.standard_normal((8, config.dense_dim)).astype(np.float32)
        sparse = [
            [list(rng.integers(0, 64, size=4)) for _ in range(config.num_tables)]
            for _ in range(8)
        ]
        report = compare_outputs(
            model.forward(dense, sparse), quantized.forward(dense, sparse)
        )
        assert 0.0 < report.max_abs_error < 0.3

    def test_int8_resource_estimate_shrinks_everything(self):
        from repro.fpga.resources import ResourceVector

        fp32 = ResourceVector(lut=10000, ff=4000, bram=100, dsp=60)
        int8 = int8_resource_estimate(fp32)
        assert int8["lut"] < fp32.lut
        assert int8["dsp"] < fp32.dsp
        assert int8["bram"] < fp32.bram
