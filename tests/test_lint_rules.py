"""Per-rule lint corpus: each rule fires on a known-bad fixture and
stays silent once the allowlist pragma is added."""

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import lint_source, parse_pragmas  # noqa: E402


def violations(code, path="src/repro/example.py"):
    return lint_source(textwrap.dedent(code), path=path)


def rule_ids(code, path="src/repro/example.py"):
    return [v.rule for v in violations(code, path)]


class TestR1UnitSuffixes:
    def test_banned_suffix_on_assignment_fires(self):
        assert rule_ids("latency_ms = 5\n") == ["R1"]

    def test_banned_suffix_on_parameter_fires(self):
        assert rule_ids("def f(delay_sec):\n    return delay_sec\n") == ["R1"]

    def test_banned_suffix_on_attribute_fires(self):
        code = """
        class C:
            def __init__(self):
                self.total_seconds = 0
        """
        assert rule_ids(code) == ["R1"]

    def test_mixed_unit_addition_fires(self):
        assert rule_ids("total = page_ns + flush_us\n") == ["R1"]

    def test_mixed_unit_comparison_fires(self):
        assert rule_ids("flag = read_ns < limit_cycles\n") == ["R1"]

    def test_conversion_via_multiplication_is_allowed(self):
        assert rule_ids("total_ns = delay_us * 1000\n") == []

    def test_same_unit_arithmetic_is_allowed(self):
        assert rule_ids("total_ns = read_ns + flush_ns\n") == []

    def test_approved_suffixes_are_allowed(self):
        assert rule_ids("a_ns = 1\nb_us = 2\nc_cycles = 3\nd_hz = 4\n") == []

    def test_pragma_silences(self):
        assert rule_ids("latency_ms = 5  # lint: ok[R1]\n") == []


class TestR2FloatTimeEquality:
    def test_equality_on_now_fires(self):
        assert rule_ids("ok = sim.now == finish\n") == ["R2"]

    def test_inequality_on_ns_name_fires(self):
        assert rule_ids("ok = total_ns != expected\n") == ["R2"]

    def test_integer_literal_is_allowed(self):
        assert rule_ids("ok = sim.now == 10\n") == []

    def test_pytest_approx_is_allowed(self):
        assert rule_ids("ok = total_ns == pytest.approx(expected)\n") == []

    def test_ordering_comparison_is_allowed(self):
        assert rule_ids("ok = sim.now < deadline\n") == []

    def test_pragma_silences(self):
        assert rule_ids("ok = sim.now == finish  # lint: ok[R2]\n") == []


class TestR3KernelEncapsulation:
    def test_heapq_import_fires(self):
        assert rule_ids("import heapq\n") == ["R3"]

    def test_heapq_from_import_fires(self):
        assert rule_ids("from heapq import heappush\n") == ["R3"]

    def test_succeed_call_fires(self):
        assert rule_ids("event.succeed(42)\n") == ["R3"]

    def test_kernel_module_is_exempt(self):
        path = "src/repro/sim/engine.py"
        assert rule_ids("import heapq\nevent.succeed(1)\n", path=path) == []

    def test_pragma_silences(self):
        assert rule_ids("event.succeed(42)  # lint: ok[R3]\n") == []

    def test_file_pragma_silences_whole_file(self):
        code = "# lint: ok-file[R3]\nimport heapq\nevent.succeed(1)\n"
        assert rule_ids(code) == []


class TestR4FrozenConfigs:
    def test_setattr_outside_init_hooks_fires(self):
        code = """
        def tweak(config):
            object.__setattr__(config, "page_size", 8192)
        """
        assert rule_ids(code) == ["R4"]

    def test_setattr_in_post_init_is_allowed(self):
        code = """
        class C:
            def __post_init__(self):
                object.__setattr__(self, "derived", 1)
        """
        assert rule_ids(code) == []

    def test_pragma_silences(self):
        code = 'object.__setattr__(c, "x", 1)  # lint: ok[R4]\n'
        assert rule_ids(code) == []


class TestR5FTLEncapsulation:
    def test_l2p_table_access_fires(self):
        assert rule_ids("pages = ftl.mapping._table\n") == ["R5"]

    def test_next_free_access_fires(self):
        assert rule_ids("ftl._next_free = 0\n") == ["R5"]

    def test_ftl_module_is_exempt(self):
        path = "src/repro/ssd/ftl.py"
        assert rule_ids("self._table[lba] = physical\n", path=path) == []

    def test_pragma_silences(self):
        assert rule_ids("pages = ftl.mapping._table  # lint: ok[R5]\n") == []


class TestR6BenchmarkReporting:
    def test_print_in_benchmark_fires(self):
        assert rule_ids("print('x')\n", path="benchmarks/bench_x.py") == ["R6"]

    def test_print_outside_benchmarks_is_allowed(self):
        assert rule_ids("print('x')\n", path="examples/demo.py") == []

    def test_table_print_method_is_allowed(self):
        assert rule_ids("table.print()\n", path="benchmarks/bench_x.py") == []

    def test_emit_is_allowed(self):
        assert rule_ids("emit(chart)\n", path="benchmarks/bench_x.py") == []

    def test_pragma_silences(self):
        code = "print('x')  # lint: ok[R6]\n"
        assert rule_ids(code, path="benchmarks/bench_x.py") == []


class TestR7WallClock:
    def test_time_import_in_core_fires(self):
        assert rule_ids("import time\n", path="src/repro/core/x.py") == ["R7"]

    def test_datetime_from_import_fires(self):
        code = "from datetime import datetime\n"
        assert rule_ids(code, path="src/repro/ssd/x.py") == ["R7"]

    def test_wall_clock_call_fires(self):
        assert rule_ids("t = time.time()\n", path="src/repro/sim/x.py") == ["R7"]

    def test_monotonic_call_fires_in_obs(self):
        code = "t0 = time.monotonic_ns()\n"
        assert rule_ids(code, path="src/repro/obs/x.py") == ["R7"]

    def test_datetime_now_fires(self):
        code = "stamp = datetime.now()\n"
        assert rule_ids(code, path="src/repro/core/x.py") == ["R7"]

    def test_outside_sim_packages_is_allowed(self):
        assert rule_ids("import time\n", path="src/repro/analysis/x.py") == []
        assert rule_ids("import time\n", path="benchmarks/bench_x.py") == []

    def test_simulated_time_attributes_are_allowed(self):
        code = "elapsed_ns = sim.now - start_ns\n"
        assert rule_ids(code, path="src/repro/core/x.py") == []

    def test_unrelated_now_attribute_is_allowed(self):
        # Only the wall-clock modules' namespaces are banned; sim.now
        # and arbitrary .now attributes on other objects are the point.
        code = "t = clock.now()\n"
        assert rule_ids(code, path="src/repro/core/x.py") == []

    def test_pragma_silences(self):
        code = "import time  # lint: ok[R7]\n"
        assert rule_ids(code, path="src/repro/core/x.py") == []


class TestR8NamedResources:
    def test_anonymous_server_fires(self):
        assert rule_ids("bus = Server(sim)\n") == ["R8"]

    def test_anonymous_resource_fires(self):
        assert rule_ids("die = Resource(sim, capacity=1)\n") == ["R8"]

    def test_name_keyword_is_allowed(self):
        code = "bus = Server(sim, name='channel0-bus')\n"
        assert rule_ids(code) == []

    def test_positional_name_is_allowed(self):
        assert rule_ids("mux = Server(sim, 'ftl-mux')\n") == []
        assert rule_ids("die = Resource(sim, 1, 'die0')\n") == []

    def test_kernel_module_is_exempt(self):
        # repro.sim defines the primitives; its internal/test helpers
        # may build anonymous instances.
        path = "src/repro/sim/resources.py"
        assert rule_ids("r = Resource(sim)\n", path=path) == []

    def test_outside_repro_is_exempt(self):
        assert rule_ids("r = Resource(sim)\n", path="tests/test_x.py") == []

    def test_double_star_kwargs_gets_benefit_of_doubt(self):
        assert rule_ids("r = Resource(sim, **options)\n") == []

    def test_unrelated_calls_are_ignored(self):
        assert rule_ids("x = Server_factory(sim)\ny = make(sim)\n") == []

    def test_pragma_silences(self):
        assert rule_ids("bus = Server(sim)  # lint: ok[R8]\n") == []


class TestEngineMechanics:
    def test_syntax_error_reported_not_raised(self):
        out = violations("def broken(:\n")
        assert [v.rule for v in out] == ["E0"]

    def test_pragma_parsing_line_and_file_scope(self):
        per_line, per_file = parse_pragmas(
            "x = 1  # lint: ok[R1,R2]\n# lint: ok-file[R6]\n"
        )
        assert per_line == {1: {"R1", "R2"}}
        assert per_file == {"R6"}

    def test_star_pragma_silences_everything(self):
        assert rule_ids("import heapq  # lint: ok[*]\n") == []

    def test_multiline_statement_pragma_on_any_spanned_line(self):
        code = "total = (\n    page_ns + flush_us  # lint: ok[R1]\n)\n"
        assert rule_ids(code) == []

    def test_violation_render_format(self):
        violation = violations("import heapq\n")[0]
        assert violation.render().endswith("R3 " + violation.message)
        assert "src/repro/example.py:1" in violation.render()
