"""Per-rule lint corpus: each rule fires on a known-bad fixture and
stays silent once the allowlist pragma is added."""

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import lint_source, parse_pragmas  # noqa: E402
from tools.lint.engine import lint_contexts, parse_context  # noqa: E402
from tools.lint.rules_project import PROJECT_RULES_BY_ID  # noqa: E402


def violations(code, path="src/repro/example.py"):
    return lint_source(textwrap.dedent(code), path=path)


def rule_ids(code, path="src/repro/example.py"):
    return [v.rule for v in violations(code, path)]


def project_violations(files, *active):
    """Run the selected whole-program rules over a synthetic corpus."""
    contexts = []
    for path, code in files.items():
        ctx, errors = parse_context(textwrap.dedent(code), path)
        assert ctx is not None, errors
        contexts.append(ctx)
    rules = [PROJECT_RULES_BY_ID[rule_id] for rule_id in active]
    return lint_contexts(contexts, rules=(), project_rules=rules)


class TestR1UnitSuffixes:
    def test_banned_suffix_on_assignment_fires(self):
        assert rule_ids("latency_ms = 5\n") == ["R1"]

    def test_banned_suffix_on_parameter_fires(self):
        assert rule_ids("def f(delay_sec):\n    return delay_sec\n") == ["R1"]

    def test_banned_suffix_on_attribute_fires(self):
        code = """
        class C:
            def __init__(self):
                self.total_seconds = 0
        """
        assert rule_ids(code) == ["R1"]

    def test_mixed_unit_addition_fires(self):
        assert rule_ids("total = page_ns + flush_us\n") == ["R1"]

    def test_mixed_unit_comparison_fires(self):
        assert rule_ids("flag = read_ns < limit_cycles\n") == ["R1"]

    def test_conversion_via_multiplication_is_allowed(self):
        assert rule_ids("total_ns = delay_us * 1000\n") == []

    def test_same_unit_arithmetic_is_allowed(self):
        assert rule_ids("total_ns = read_ns + flush_ns\n") == []

    def test_approved_suffixes_are_allowed(self):
        assert rule_ids("a_ns = 1\nb_us = 2\nc_cycles = 3\nd_hz = 4\n") == []

    def test_pragma_silences(self):
        assert rule_ids("latency_ms = 5  # lint: ok[R1]\n") == []


class TestR2FloatTimeEquality:
    def test_equality_on_now_fires(self):
        assert rule_ids("ok = sim.now == finish\n") == ["R2"]

    def test_inequality_on_ns_name_fires(self):
        assert rule_ids("ok = total_ns != expected\n") == ["R2"]

    def test_integer_literal_is_allowed(self):
        assert rule_ids("ok = sim.now == 10\n") == []

    def test_pytest_approx_is_allowed(self):
        assert rule_ids("ok = total_ns == pytest.approx(expected)\n") == []

    def test_ordering_comparison_is_allowed(self):
        assert rule_ids("ok = sim.now < deadline\n") == []

    def test_pragma_silences(self):
        assert rule_ids("ok = sim.now == finish  # lint: ok[R2]\n") == []


class TestR3KernelEncapsulation:
    def test_heapq_import_fires(self):
        assert rule_ids("import heapq\n") == ["R3"]

    def test_heapq_from_import_fires(self):
        assert rule_ids("from heapq import heappush\n") == ["R3"]

    def test_succeed_call_fires(self):
        assert rule_ids("event.succeed(42)\n") == ["R3"]

    def test_kernel_module_is_exempt(self):
        path = "src/repro/sim/engine.py"
        assert rule_ids("import heapq\nevent.succeed(1)\n", path=path) == []

    def test_pragma_silences(self):
        assert rule_ids("event.succeed(42)  # lint: ok[R3]\n") == []

    def test_file_pragma_silences_whole_file(self):
        code = "# lint: ok-file[R3]\nimport heapq\nevent.succeed(1)\n"
        assert rule_ids(code) == []


class TestR4FrozenConfigs:
    def test_setattr_outside_init_hooks_fires(self):
        code = """
        def tweak(config):
            object.__setattr__(config, "page_size", 8192)
        """
        assert rule_ids(code) == ["R4"]

    def test_setattr_in_post_init_is_allowed(self):
        code = """
        class C:
            def __post_init__(self):
                object.__setattr__(self, "derived", 1)
        """
        assert rule_ids(code) == []

    def test_pragma_silences(self):
        code = 'object.__setattr__(c, "x", 1)  # lint: ok[R4]\n'
        assert rule_ids(code) == []


class TestR5FTLEncapsulation:
    def test_l2p_table_access_fires(self):
        assert rule_ids("pages = ftl.mapping._table\n") == ["R5"]

    def test_next_free_access_fires(self):
        assert rule_ids("ftl._next_free = 0\n") == ["R5"]

    def test_ftl_module_is_exempt(self):
        path = "src/repro/ssd/ftl.py"
        assert rule_ids("self._table[lba] = physical\n", path=path) == []

    def test_pragma_silences(self):
        assert rule_ids("pages = ftl.mapping._table  # lint: ok[R5]\n") == []


class TestR6BenchmarkReporting:
    def test_print_in_benchmark_fires(self):
        assert rule_ids("print('x')\n", path="benchmarks/bench_x.py") == ["R6"]

    def test_print_outside_benchmarks_is_allowed(self):
        assert rule_ids("print('x')\n", path="examples/demo.py") == []

    def test_table_print_method_is_allowed(self):
        assert rule_ids("table.print()\n", path="benchmarks/bench_x.py") == []

    def test_emit_is_allowed(self):
        assert rule_ids("emit(chart)\n", path="benchmarks/bench_x.py") == []

    def test_pragma_silences(self):
        code = "print('x')  # lint: ok[R6]\n"
        assert rule_ids(code, path="benchmarks/bench_x.py") == []


class TestR7WallClock:
    def test_time_import_in_core_fires(self):
        assert rule_ids("import time\n", path="src/repro/core/x.py") == ["R7"]

    def test_datetime_from_import_fires(self):
        code = "from datetime import datetime\n"
        assert rule_ids(code, path="src/repro/ssd/x.py") == ["R7"]

    def test_wall_clock_call_fires(self):
        assert rule_ids("t = time.time()\n", path="src/repro/sim/x.py") == ["R7"]

    def test_monotonic_call_fires_in_obs(self):
        code = "t0 = time.monotonic_ns()\n"
        assert rule_ids(code, path="src/repro/obs/x.py") == ["R7"]

    def test_datetime_now_fires(self):
        code = "stamp = datetime.now()\n"
        assert rule_ids(code, path="src/repro/core/x.py") == ["R7"]

    def test_outside_sim_packages_is_allowed(self):
        assert rule_ids("import time\n", path="src/repro/analysis/x.py") == []
        assert rule_ids("import time\n", path="benchmarks/bench_x.py") == []

    def test_simulated_time_attributes_are_allowed(self):
        code = "elapsed_ns = sim.now - start_ns\n"
        assert rule_ids(code, path="src/repro/core/x.py") == []

    def test_unrelated_now_attribute_is_allowed(self):
        # Only the wall-clock modules' namespaces are banned; sim.now
        # and arbitrary .now attributes on other objects are the point.
        code = "t = clock.now()\n"
        assert rule_ids(code, path="src/repro/core/x.py") == []

    def test_pragma_silences(self):
        code = "import time  # lint: ok[R7]\n"
        assert rule_ids(code, path="src/repro/core/x.py") == []


class TestR8NamedResources:
    def test_anonymous_server_fires(self):
        assert rule_ids("bus = Server(sim)\n") == ["R8"]

    def test_anonymous_resource_fires(self):
        assert rule_ids("die = Resource(sim, capacity=1)\n") == ["R8"]

    def test_name_keyword_is_allowed(self):
        code = "bus = Server(sim, name='channel0-bus')\n"
        assert rule_ids(code) == []

    def test_positional_name_is_allowed(self):
        assert rule_ids("mux = Server(sim, 'ftl-mux')\n") == []
        assert rule_ids("die = Resource(sim, 1, 'die0')\n") == []

    def test_kernel_module_is_exempt(self):
        # repro.sim defines the primitives; its internal/test helpers
        # may build anonymous instances.
        path = "src/repro/sim/resources.py"
        assert rule_ids("r = Resource(sim)\n", path=path) == []

    def test_outside_repro_is_exempt(self):
        assert rule_ids("r = Resource(sim)\n", path="tests/test_x.py") == []

    def test_double_star_kwargs_gets_benefit_of_doubt(self):
        assert rule_ids("r = Resource(sim, **options)\n") == []

    def test_unrelated_calls_are_ignored(self):
        assert rule_ids("x = Server_factory(sim)\ny = make(sim)\n") == []

    def test_pragma_silences(self):
        assert rule_ids("bus = Server(sim)  # lint: ok[R8]\n") == []


DES_FILE = "src/repro/core/pipeline.py"
FAST_FILE = "src/repro/core/fastpath.py"

#: DES side of the synthetic parity corpus: the root reaches a shared
#: emission helper plus a second helper emitting the ``translate`` span.
_DES_SIDE = """
    def _emit_shared(tracer):
        tracer.add_span("lookup_batch", 0.0, 1.0)

    def _emit_translate(tracer):
        tracer.add_span("translate", 0.0, 1.0)

    def _lookup_batch_des(tracer):
        _emit_shared(tracer)
        _emit_translate(tracer)
"""

_FAST_SIDE_COMPLETE = """
    from repro.core.pipeline import _emit_shared, _emit_translate

    def _lookup_batch_fast(tracer):
        _emit_shared(tracer)
        _emit_translate(tracer)

    def _lookup_batch_fast_vcache(tracer):
        _lookup_batch_fast(tracer)
"""

#: Mutant: the fast path no longer reaches the ``translate`` emission.
_FAST_SIDE_MUTATED = """
    from repro.core.pipeline import _emit_shared

    def _lookup_batch_fast(tracer):
        _emit_shared(tracer)

    def _lookup_batch_fast_vcache(tracer):
        _lookup_batch_fast(tracer)
"""


class TestR9InstrumentationParity:
    def test_symmetric_emission_is_clean(self):
        out = project_violations(
            {DES_FILE: _DES_SIDE, FAST_FILE: _FAST_SIDE_COMPLETE}, "R9"
        )
        assert out == []

    def test_removed_fastpath_span_names_value_and_both_files(self):
        # The mutation test of the issue: delete a single span emission
        # from the fast path and R9 must report the exact missing name
        # and point at both sides — the DES emission site (violation
        # path) and the fast-path roots (in the message).
        out = project_violations(
            {DES_FILE: _DES_SIDE, FAST_FILE: _FAST_SIDE_MUTATED}, "R9"
        )
        assert [v.rule for v in out] == ["R9"]
        violation = out[0]
        assert violation.path == DES_FILE
        assert "'translate'" in violation.message
        assert DES_FILE in violation.message
        assert FAST_FILE in violation.message
        assert "'lookup_batch'" not in violation.message

    def test_extra_fastpath_emission_fires_in_mirror_direction(self):
        fast_extra = """
            from repro.core.pipeline import _emit_shared, _emit_translate

            def _emit_fast_only(tracer):
                tracer.add_span("fast_only", 0.0, 1.0)

            def _lookup_batch_fast(tracer):
                _emit_shared(tracer)
                _emit_translate(tracer)
                _emit_fast_only(tracer)

            def _lookup_batch_fast_vcache(tracer):
                _lookup_batch_fast(tracer)
        """
        out = project_violations(
            {DES_FILE: _DES_SIDE, FAST_FILE: fast_extra}, "R9"
        )
        assert [v.rule for v in out] == ["R9"]
        assert "'fast_only'" in out[0].message
        assert "DES" in out[0].message

    def test_spec_is_skipped_when_roots_are_absent(self):
        out = project_violations(
            {DES_FILE: "def unrelated():\n    return 1\n"}, "R9"
        )
        assert out == []


class TestR10UnitFlow:
    def test_cross_file_ns_return_bound_to_cycles_name_fires(self):
        out = project_violations(
            {
                "src/repro/ssd/timing.py": """
                    class SSDTimingModel:
                        def vector_transfer_ns(self, size):
                            return size * 2.0
                """,
                "src/repro/core/sched.py": """
                    def plan(timing):
                        wait_cycles = timing.vector_transfer_ns(64)
                        return wait_cycles
                """,
            },
            "R10",
        )
        assert [v.rule for v in out] == ["R10"]
        assert "wait_cycles" in out[0].message
        assert "_ns" in out[0].message

    def test_matching_suffix_assignment_is_clean(self):
        out = project_violations(
            {
                "src/repro/ssd/timing.py": """
                    def vector_transfer_ns(size):
                        return size * 2.0
                """,
                "src/repro/core/sched.py": """
                    def plan():
                        wait_ns = vector_transfer_ns(64)
                        return wait_ns
                """,
            },
            "R10",
        )
        assert out == []

    def test_declared_suffix_contradicting_returns_fires(self):
        out = project_violations(
            {
                "src/repro/core/t.py": """
                    def read_ns():
                        return 5.0

                    def total_cycles():
                        return read_ns() + read_ns()
                """,
            },
            "R10",
        )
        assert [v.rule for v in out] == ["R10"]
        assert "total_cycles" in out[0].message

    def test_explicit_conversion_through_multiplication_is_clean(self):
        # * / are the sanctioned conversion operators (same rule as R1):
        # a scaled expression no longer carries the source unit.
        out = project_violations(
            {
                "src/repro/core/t.py": """
                    def read_ns():
                        return 5.0

                    def plan(clock_hz):
                        wait_cycles = read_ns() * clock_hz / 1e9
                        return wait_cycles
                """,
            },
            "R10",
        )
        assert out == []


class TestR11DeterminismHazards:
    def test_set_iteration_scheduling_fires(self):
        out = project_violations(
            {
                "src/repro/sim/kick.py": """
                    def kick(sim, events):
                        for event in set(events):
                            sim.process(event)
                """,
            },
            "R11",
        )
        assert [v.rule for v in out] == ["R11"]
        assert "set" in out[0].message

    def test_sorted_wrapper_is_clean(self):
        out = project_violations(
            {
                "src/repro/sim/kick.py": """
                    def kick(sim, events):
                        for event in sorted(set(events)):
                            sim.process(event)
                """,
            },
            "R11",
        )
        assert out == []

    def test_set_iteration_without_hazard_is_clean(self):
        out = project_violations(
            {
                "src/repro/sim/kick.py": """
                    def count(events):
                        total = 0
                        for event in set(events):
                            total = total + 1
                        return total
                """,
            },
            "R11",
        )
        assert out == []

    def test_unsorted_rglob_append_fires(self):
        out = project_violations(
            {
                "src/repro/obs/export.py": """
                    def collect(root, records):
                        for path in root.rglob("*.json"):
                            records.append(path)
                """,
            },
            "R11",
        )
        assert [v.rule for v in out] == ["R11"]

    def test_outside_simulation_packages_is_exempt(self):
        out = project_violations(
            {
                "src/repro/analysis/free.py": """
                    def kick(sim, events):
                        for event in set(events):
                            sim.process(event)
                """,
            },
            "R11",
        )
        assert out == []


class TestR12NameRegistry:
    CATALOGUE = """
        SPAN_LOOKUP = "lookup"
    """

    def test_hardcoded_span_name_fires(self):
        out = project_violations(
            {
                "src/repro/obs/names.py": self.CATALOGUE,
                "src/repro/core/emit.py": """
                    from repro.obs import names

                    def emit(tracer):
                        tracer.add_span(names.SPAN_LOOKUP, 0.0, 1.0)
                        tracer.add_span("inline", 0.0, 1.0)
                """,
            },
            "R12",
        )
        assert [v.rule for v in out] == ["R12"]
        assert "'inline'" in out[0].message
        assert "repro/obs/names.py" in out[0].message

    def test_catalogue_reference_is_clean(self):
        out = project_violations(
            {
                "src/repro/obs/names.py": self.CATALOGUE,
                "src/repro/core/emit.py": """
                    from repro.obs import names

                    def emit(tracer):
                        tracer.add_span(names.SPAN_LOOKUP, 0.0, 1.0)
                """,
            },
            "R12",
        )
        assert out == []

    def test_foreign_module_constant_fires(self):
        out = project_violations(
            {
                "src/repro/obs/names.py": self.CATALOGUE,
                "src/repro/core/emit.py": """
                    from repro.obs import names

                    LOCAL_NAME = "local"

                    def emit(tracer):
                        tracer.add_span(names.SPAN_LOOKUP, 0.0, 1.0)
                        tracer.add_span(LOCAL_NAME, 0.0, 1.0)
                """,
            },
            "R12",
        )
        assert [v.rule for v in out] == ["R12"]
        assert "repro.core.emit" in out[0].message

    def test_dynamic_name_is_allowed(self):
        out = project_violations(
            {
                "src/repro/obs/names.py": self.CATALOGUE,
                "src/repro/core/emit.py": """
                    from repro.obs import names

                    def emit(tracer, channel):
                        tracer.add_span(names.SPAN_LOOKUP, 0.0, 1.0)
                        tracer.add_span(channel.name, 0.0, 1.0)
                """,
            },
            "R12",
        )
        assert out == []

    def test_orphan_catalogue_entry_fires(self):
        out = project_violations(
            {
                "src/repro/obs/names.py": """
                    SPAN_LOOKUP = "lookup"
                    SPAN_ORPHAN = "orphan"
                """,
                "src/repro/core/emit.py": """
                    from repro.obs import names

                    def emit(tracer):
                        tracer.add_span(names.SPAN_LOOKUP, 0.0, 1.0)
                """,
            },
            "R12",
        )
        assert [v.rule for v in out] == ["R12"]
        assert "SPAN_ORPHAN" in out[0].message
        assert out[0].path == "src/repro/obs/names.py"


class TestEngineMechanics:
    def test_syntax_error_reported_not_raised(self):
        out = violations("def broken(:\n")
        assert [v.rule for v in out] == ["E0"]

    def test_pragma_parsing_line_and_file_scope(self):
        per_line, per_file = parse_pragmas(
            "x = 1  # lint: ok[R1,R2]\n# lint: ok-file[R6]\n"
        )
        assert per_line == {1: {"R1", "R2"}}
        assert per_file == {"R6"}

    def test_star_pragma_silences_everything(self):
        assert rule_ids("import heapq  # lint: ok[*]\n") == []

    def test_multiline_statement_pragma_on_any_spanned_line(self):
        code = "total = (\n    page_ns + flush_us  # lint: ok[R1]\n)\n"
        assert rule_ids(code) == []

    def test_pragma_on_closing_line_suppresses_first_line_violation(self):
        # The violation is reported at the statement's first line; the
        # pragma sits on the closing paren three lines later and must
        # still attach to the whole statement interval.
        code = (
            "total = (\n"
            "    page_ns\n"
            "    + flush_us\n"
            ")  # lint: ok[R1]\n"
        )
        assert rule_ids(code) == []

    def test_pragma_inside_function_body_does_not_cover_header(self):
        # Compound statements contribute only their header lines: a
        # pragma on a body line must not blanket the whole function.
        code = (
            "def f(delay_sec):\n"
            "    x = 1  # lint: ok[R1]\n"
            "    return delay_sec\n"
        )
        assert rule_ids(code) == ["R1"]

    def test_node_index_nodes_in_document_order(self):
        import ast

        ctx, errors = parse_context(
            "a_ns = 1\nb_ns = a_ns + 2\n\ndef f():\n    c_ns = 3\n",
            "src/repro/example.py",
        )
        assert not errors
        assigns = ctx.index.nodes(ast.Assign)
        assert [node.lineno for node in assigns] == [1, 2, 5]
        mixed = ctx.index.nodes(ast.Assign, ast.FunctionDef)
        assert [node.lineno for node in mixed] == [1, 2, 4, 5]

    def test_node_index_parent_and_enclosing(self):
        import ast

        ctx, _ = parse_context(
            "class C:\n    def m(self):\n        return object.__setattr__\n",
            "src/repro/example.py",
        )
        index = ctx.index
        attr = index.nodes(ast.Attribute)[0]
        fn = index.enclosing(attr, ast.FunctionDef)
        assert fn is not None and fn.name == "m"
        cls = index.enclosing(attr, ast.ClassDef)
        assert cls is not None and cls.name == "C"
        ret = index.nodes(ast.Return)[0]
        assert index.parent(attr) is ret

    def test_node_index_is_built_once_per_file(self):
        ctx, _ = parse_context("x_ns = 1\n", "src/repro/example.py")
        assert ctx.index is ctx.index

    def test_violation_render_format(self):
        violation = violations("import heapq\n")[0]
        assert violation.render().endswith("R3 " + violation.message)
        assert "src/repro/example.py:1" in violation.render()


# ----------------------------------------------------------------------
# R9 serving parity over the timeseries emitters (PR 8)
# ----------------------------------------------------------------------
#: Synthetic serving corpus mirroring the production shape: both paths
#: feed the windowed metrics through one shared helper, so deleting
#: either call site makes the metric emissions one-sided.
_SERVING_CATALOGUE = """
    METRIC_SERVING_LATENCY = "serving.latency_ns"
    METRIC_SERVING_BATCHES = "serving.batches"
"""

_SERVING_PIPELINE = """
    from repro.obs import names

    class PipelineSimulator:
        def _observe_completions(self, metrics):
            metrics.histogram(names.METRIC_SERVING_LATENCY)
            metrics.counter(names.METRIC_SERVING_BATCHES)

        def _run_des(self, metrics):
            self._observe_completions(metrics)

        def _run_fast(self, metrics):
            self._observe_completions(metrics)
"""

_SERVING_PIPELINE_MUTATED = """
    from repro.obs import names

    class PipelineSimulator:
        def _observe_completions(self, metrics):
            metrics.histogram(names.METRIC_SERVING_LATENCY)
            metrics.counter(names.METRIC_SERVING_BATCHES)

        def _run_des(self, metrics):
            self._observe_completions(metrics)

        def _run_fast(self, metrics):
            pass
"""


class TestR9TimeseriesParity:
    FILES = {"src/repro/obs/names.py": _SERVING_CATALOGUE}

    def test_shared_observer_is_clean(self):
        out = project_violations(
            {**self.FILES, "src/repro/core/pipeline_sim.py": _SERVING_PIPELINE},
            "R9",
        )
        assert out == []

    def test_deleted_fast_call_site_fires_per_metric(self):
        # The canary mutation in miniature: dropping the fast path's
        # _observe_completions call leaves every windowed serving
        # metric DES-only, and R9 names each one.
        out = project_violations(
            {
                **self.FILES,
                "src/repro/core/pipeline_sim.py": _SERVING_PIPELINE_MUTATED,
            },
            "R9",
        )
        assert [v.rule for v in out] == ["R9", "R9"]
        named = {v.message.split("'")[1] for v in out}
        assert named == {"serving.latency_ns", "serving.batches"}
        assert all("fast-path" in v.message for v in out)


class TestR12SLOObjectives:
    CATALOGUE = """
        SLO_SERVING_TAIL = "serving-tail-latency"
        METRIC_SERVING_LATENCY = "serving.latency_ns"
    """

    def test_catalogued_objective_is_clean(self):
        out = project_violations(
            {
                "src/repro/obs/names.py": self.CATALOGUE,
                "src/repro/host/slo_wiring.py": """
                    from repro.obs import names

                    def declare(slo):
                        slo.objective(
                            names.SLO_SERVING_TAIL,
                            names.METRIC_SERVING_LATENCY,
                            quantile=99.9,
                        )
                """,
            },
            "R12",
        )
        assert out == []

    def test_hardcoded_objective_name_fires(self):
        out = project_violations(
            {
                "src/repro/obs/names.py": self.CATALOGUE,
                "src/repro/host/slo_wiring.py": """
                    from repro.obs import names

                    def declare(slo):
                        slo.objective(
                            "ad-hoc-slo", names.METRIC_SERVING_LATENCY
                        )
                        slo.objective(
                            names.SLO_SERVING_TAIL,
                            names.METRIC_SERVING_LATENCY,
                        )
                """,
            },
            "R12",
        )
        assert [v.rule for v in out] == ["R12"]
        assert "'ad-hoc-slo'" in out[0].message

    def test_hardcoded_objective_metric_fires(self):
        out = project_violations(
            {
                "src/repro/obs/names.py": self.CATALOGUE,
                "src/repro/host/slo_wiring.py": """
                    from repro.obs import names

                    def declare(slo):
                        slo.objective(
                            names.SLO_SERVING_TAIL, "serving.latency_ns"
                        )
                        slo.objective(
                            names.SLO_SERVING_TAIL,
                            names.METRIC_SERVING_LATENCY,
                        )
                """,
            },
            "R12",
        )
        assert [v.rule for v in out] == ["R12"]
        assert "'serving.latency_ns'" in out[0].message
