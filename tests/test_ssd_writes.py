"""Tests for the timed write (program) path."""

import pytest

from repro.sim import Simulator
from repro.ssd.controller import SSDController
from repro.ssd.flash import FlashArray
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def small_geometry():
    return SSDGeometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
    )


class TestFlashWrites:
    def test_single_write_latency(self):
        sim = Simulator()
        flash = FlashArray(sim, small_geometry())
        sim.process(flash.write_page_proc(0, b"data"))
        sim.run()
        expected = (
            flash.timing.request_overhead_ns
            + flash.timing.transfer_ns
            + flash.timing.page_program_ns
        )
        assert sim.now == pytest.approx(expected)
        assert flash.peek(0, 0, 4) == b"data"

    def test_program_dominates_write(self):
        timing = SSDTimingModel()
        assert timing.page_program_ns > 5 * timing.page_read_ns

    def test_writes_on_different_channels_overlap(self):
        sim = Simulator()
        flash = FlashArray(sim, small_geometry())
        for page in range(4):  # pages 0-3 on channels 0-3
            sim.process(flash.write_page_proc(page, b"x"))
        sim.run()
        single = (
            flash.timing.request_overhead_ns
            + flash.timing.transfer_ns
            + flash.timing.page_program_ns
        )
        assert sim.now == pytest.approx(single)

    def test_writes_on_same_die_serialize(self):
        sim = Simulator()
        geo = SSDGeometry(
            channels=1, dies_per_channel=1, planes_per_die=1,
            blocks_per_plane=4, pages_per_block=8,
        )
        flash = FlashArray(sim, geo)
        sim.process(flash.write_page_proc(0, b"a"))
        sim.process(flash.write_page_proc(1, b"b"))
        sim.run()
        single = flash.timing.transfer_ns + flash.timing.page_program_ns
        assert sim.now >= 2 * single

    def test_write_traffic_accounted(self):
        sim = Simulator()
        flash = FlashArray(sim, small_geometry())
        sim.process(flash.write_page_proc(0, b"1234"))
        sim.run()
        assert flash.stats.host_write_bytes == 4


class TestControllerWrites:
    def test_write_then_read_roundtrip(self):
        sim = Simulator()
        ctrl = SSDController(sim, small_geometry())
        sim.process(ctrl.write_block_proc(3, b"persisted"))
        sim.run()
        assert ctrl.peek_logical(3 * 4096, 9) == b"persisted"

    def test_oversized_write_rejected(self):
        sim = Simulator()
        ctrl = SSDController(sim, small_geometry())

        def run():
            yield from ctrl.write_block_proc(0, b"x" * 5000)

        sim.process(run())
        with pytest.raises(ValueError):
            sim.run()

    def test_writes_contend_with_reads(self):
        # A write holds its die through the long program; a read to the
        # same die queues behind it.
        sim = Simulator()
        ctrl = SSDController(sim, small_geometry())
        sim.process(ctrl.write_block_proc(0, b"w"))
        read = sim.process(ctrl.read_block_proc(0))
        sim.run()
        assert sim.now > ctrl.timing.page_program_ns
        assert read.value.data[:1] == b"w"
