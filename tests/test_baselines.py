"""Tests for the comparator backends (Section VI systems).

These encode the paper's qualitative results as assertions: the
performance ladder of Fig. 10/11, RM-SSD's wins in Fig. 12/13, the
traffic results of Fig. 3 / Table IV, and Fig. 14's locality split.
"""

import numpy as np
import pytest

from repro.baselines import (
    DRAMBackend,
    EMBMMIOBackend,
    EMBPageSumBackend,
    EMBVectorSumBackend,
    NaiveSSDBackend,
    RMSSDBackend,
    RecSSDBackend,
)
from repro.models import build_model, get_config
from repro.workloads.inputs import InferenceRequest, RequestGenerator

ROWS = 8192


@pytest.fixture(scope="module")
def rmc1():
    config = get_config("rmc1")
    model = build_model(config, rows_per_table=ROWS, seed=0)
    gen = RequestGenerator(config, ROWS, seed=1)
    return config, model, gen.requests(6, batch_size=1)


def run(backend, requests, compute=False):
    return backend.run(requests, compute=compute)


class TestNumericAgreement:
    def test_all_backends_produce_identical_outputs(self, rmc1):
        config, model, requests = rmc1
        requests = requests[:2]
        reference = run(DRAMBackend(model), requests, compute=True).outputs
        for backend in (
            NaiveSSDBackend(model, 0.25),
            EMBMMIOBackend(model),
            EMBPageSumBackend(model),
            EMBVectorSumBackend(model),
            RecSSDBackend(model),
        ):
            outputs = run(backend, requests, compute=True).outputs
            np.testing.assert_array_equal(outputs, reference)

    def test_rmssd_outputs_match_reference(self, rmc1):
        config, model, requests = rmc1
        requests = requests[:1]
        reference = run(DRAMBackend(model), requests, compute=True).outputs
        backend = RMSSDBackend(model, config.lookups_per_table)
        outputs = run(backend, requests, compute=True).outputs
        np.testing.assert_allclose(outputs, reference, rtol=1e-5, atol=1e-6)


class TestFig10Ladder:
    """Fig. 10/11: SSD-S > EMB-MMIO > EMB-PageSum > EMB-VectorSum."""

    def test_embedding_stage_ordering(self, rmc1):
        config, model, requests = rmc1
        times = {}
        for backend in (
            NaiveSSDBackend(model, 0.25),
            EMBMMIOBackend(model),
            EMBPageSumBackend(model),
            EMBVectorSumBackend(model),
        ):
            times[backend.name] = run(backend, requests).embedding_ns
        assert times["SSD-S"] > times["EMB-MMIO"]
        assert times["EMB-MMIO"] > times["EMB-PageSum"]
        assert times["EMB-PageSum"] > times["EMB-VectorSum"]

    def test_vectorsum_order_of_magnitude_speedup_over_ssds(self, rmc1):
        # Fig. 10(a): ~16x on the standalone SLS operator.
        config, model, requests = rmc1
        ssd_s = run(NaiveSSDBackend(model, 0.25), requests).embedding_ns
        vector = run(EMBVectorSumBackend(model), requests).embedding_ns
        assert 5 < ssd_s / vector < 50

    def test_sls_time_linear_in_lookups(self):
        # Fig. 10(b): execution time grows linearly with lookups.
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=ROWS, seed=0)
        backend = EMBVectorSumBackend(model)
        gen = RequestGenerator(config, ROWS, seed=3)
        times = []
        for lookups in (20, 40, 80):
            request = gen.request(1)
            request.sparse[0] = [
                lookups_list[:lookups]
                if len(lookups_list) >= lookups
                else lookups_list * (lookups // len(lookups_list))
                for lookups_list in request.sparse[0]
            ]
            times.append(backend.request_cost_ns(request)["emb-ssd"])
        assert times[1] == pytest.approx(2 * times[0], rel=0.1)
        assert times[2] == pytest.approx(4 * times[0], rel=0.1)

    def test_ssd_s_slower_than_ssd_m(self, rmc1):
        config, model, requests = rmc1
        s = run(NaiveSSDBackend(model, 0.25), requests).total_ns
        m = run(NaiveSSDBackend(model, 0.5), requests).total_ns
        assert s > m

    def test_dram_beats_vectorsum_on_embedding_dominated(self, rmc1):
        # Fig. 11(a): DRAM-only is still fastest end-to-end for RMC1.
        config, model, requests = rmc1
        dram = run(DRAMBackend(model), requests).total_ns
        vector = run(EMBVectorSumBackend(model), requests).total_ns
        assert dram < vector

    def test_vectorsum_beats_dram_on_mlp_dominated(self):
        # Fig. 11(c): EMB-VectorSum outruns DRAM-only on RMC3.
        config = get_config("rmc3")
        model = build_model(config, rows_per_table=512, seed=0)
        requests = RequestGenerator(config, 512, seed=2).requests(4, 1)
        dram = run(DRAMBackend(model), requests).total_ns
        vector = run(EMBVectorSumBackend(model), requests).total_ns
        assert vector < dram


class TestFig3Amplification:
    def test_ssd_s_amplification_tens_of_x(self, rmc1):
        config, model, requests = rmc1
        result = run(NaiveSSDBackend(model, 0.25), requests)
        assert 10 < result.stats.read_amplification < 35

    def test_isc_paths_eliminate_amplification(self, rmc1):
        config, model, requests = rmc1
        for backend_cls in (EMBPageSumBackend, EMBVectorSumBackend):
            result = run(backend_cls(model), requests)
            assert result.stats.read_amplification < 0.2

    def test_mmio_amplification_is_page_over_vector(self, rmc1):
        # No cache at all: every lookup moves a whole page.
        config, model, requests = rmc1
        result = run(EMBMMIOBackend(model), requests)
        assert result.stats.read_amplification == pytest.approx(
            4096 / model.tables.ev_size
        )


class TestTableIVTraffic:
    def test_traffic_reduction_ordering(self, rmc1):
        config, model, requests = rmc1
        ssd_s = run(NaiveSSDBackend(model, 0.25), requests).stats
        recssd = run(RecSSDBackend(model), requests).stats
        vector = run(EMBVectorSumBackend(model), requests).stats
        rmssd_backend = RMSSDBackend(model, config.lookups_per_table, use_des=False)
        rmssd = run(rmssd_backend, requests[:2]).stats
        # RecSSD and EMB-VectorSum return pooled vectors (equal traffic);
        # RM-SSD returns only final results (far less).
        assert recssd.reduction_factor_vs(ssd_s) > 10
        assert vector.host_read_bytes == recssd.host_read_bytes
        per_req_rmssd = rmssd.host_read_bytes / 2
        per_req_vector = vector.host_read_bytes / len(requests)
        assert per_req_rmssd < per_req_vector


class TestRMSSDWins:
    def test_rmssd_20x_or_more_over_ssd_s(self, rmc1):
        # Abstract: 20-100x throughput over the baseline SSD.
        config, model, requests = rmc1
        ssd_s = run(NaiveSSDBackend(model, 0.25), requests)
        rmssd = run(
            RMSSDBackend(model, config.lookups_per_table, use_des=False), requests
        )
        assert rmssd.qps / ssd_s.qps > 10

    def test_rmssd_faster_than_recssd(self, rmc1):
        # Abstract: 1.5-15x over RecSSD.
        config, model, requests = rmc1
        recssd = run(RecSSDBackend(model), requests)
        rmssd = run(
            RMSSDBackend(model, config.lookups_per_table, use_des=False), requests
        )
        assert 1.2 < rmssd.qps / recssd.qps < 20

    def test_rmssd_beats_dram_on_mlp_dominated_models(self):
        # Fig. 15: NCF/WnD run faster in-storage than in DRAM.
        for key in ("ncf", "wnd"):
            config = get_config(key)
            model = build_model(config, rows_per_table=256, seed=0)
            gen = RequestGenerator(config, 256, seed=1)
            requests = gen.requests(4, batch_size=8)
            dram = run(DRAMBackend(model), requests)
            rmssd = run(
                RMSSDBackend(model, config.lookups_per_table, use_des=False), requests
            )
            assert rmssd.qps > dram.qps, key


class TestFig14Locality:
    def test_recssd_degrades_with_locality_rmssd_does_not(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=ROWS, seed=0)
        recssd_qps = {}
        rmssd_qps = {}
        for hit in (0.80, 0.30):
            gen = RequestGenerator(config, ROWS, hot_access_fraction=hit, seed=4)
            requests = gen.requests(6, batch_size=1)
            recssd_qps[hit] = run(RecSSDBackend(model), requests).qps
            rmssd_qps[hit] = run(
                RMSSDBackend(model, config.lookups_per_table, use_des=False), requests
            ).qps
        assert recssd_qps[0.80] > 1.15 * recssd_qps[0.30]
        assert rmssd_qps[0.80] == pytest.approx(rmssd_qps[0.30], rel=0.05)


class TestRecSSDCostModel:
    """Regressions for the RecSSD host cost accounting.

    The userspace layer probes its cache for *every* lookup — host
    hits, SSD-cache hits, and flash misses alike — and the default
    cache sizing covers 1% of the actual index space even when tables
    have different row counts.
    """

    def make_request(self, model, per_table_lookups):
        num_tables = len(model.tables)
        sparse = [[
            list(per_table_lookups) if table_id == 0 else []
            for table_id in range(num_tables)
        ]]
        return InferenceRequest(dense=None, sparse=sparse)

    def test_probe_term_counts_all_three_outcomes(self, rmc1):
        config, model, _ = rmc1
        from repro.baselines.recssd import (
            HOST_MERGE_PER_VECTOR_NS,
            HOST_PROBE_PER_LOOKUP_NS,
        )

        backend = RecSSDBackend(model, cache_vectors=1, ssd_cache_vectors=2)
        # Host cache holds 1 entry, SSD cache holds 2: alternating keys
        # give host misses that the SSD cache absorbs.
        #   7 -> miss, 8 -> miss, 7 -> ssd hit, 8 -> ssd hit, 8 -> hit
        request = self.make_request(model, [7, 8, 7, 8, 8])
        breakdown = backend.request_cost_ns(request)
        hits, ssd_hits, misses = 1, 2, 2
        assert backend.stats.cache_hits == hits
        assert backend.stats.cache_misses == misses + ssd_hits
        expected_op = (
            (hits + ssd_hits + misses) * HOST_PROBE_PER_LOOKUP_NS
            + hits * HOST_MERGE_PER_VECTOR_NS
            + len(model.tables) * backend.costs.framework_op_ns
        )
        assert breakdown["emb-op"] == pytest.approx(expected_op, rel=0, abs=0)

    def test_every_lookup_pays_the_probe(self, rmc1):
        """Same lookup count => same probe cost, whatever the hit mix."""
        config, model, _ = rmc1
        from repro.baselines.recssd import HOST_PROBE_PER_LOOKUP_NS

        hot = RecSSDBackend(model, cache_vectors=64, ssd_cache_vectors=64)
        cold = RecSSDBackend(model, cache_vectors=1, ssd_cache_vectors=1)
        lookups = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        op_cost = {}
        for name, backend in (("hot", hot), ("cold", cold)):
            backend.request_cost_ns(self.make_request(model, lookups))
            breakdown = backend.request_cost_ns(
                self.make_request(model, lookups)
            )
            merge = breakdown["emb-op"] - len(lookups) * HOST_PROBE_PER_LOOKUP_NS
            op_cost[name] = (breakdown["emb-op"], merge)
        # The probe floor is identical; only the merge term differs.
        assert op_cost["hot"][1] >= op_cost["cold"][1]
        assert op_cost["hot"][0] - op_cost["hot"][1] == pytest.approx(
            op_cost["cold"][0] - op_cost["cold"][1]
        )

    def test_default_sizing_uses_actual_total_rows(self):
        from types import SimpleNamespace

        from repro.embedding.table import EmbeddingTable, EmbeddingTableSet

        tables = EmbeddingTableSet(
            [
                EmbeddingTable("tiny", 10, 16, seed=1),
                EmbeddingTable("large", 9990, 16, seed=2),
            ]
        )
        backend = RecSSDBackend(SimpleNamespace(tables=tables))
        # 1% of the actual 10_000 rows — not of 2 * 10 (extrapolating
        # table 0 would size the cache at a single vector).
        assert backend.host_cache.capacity_entries == 100


class TestRunResult:
    def test_breakdown_fractions_sum_to_one(self, rmc1):
        config, model, requests = rmc1
        result = run(NaiveSSDBackend(model, 0.25), requests)
        assert sum(result.breakdown_fractions().values()) == pytest.approx(1.0)

    def test_qps_and_latency_consistent(self, rmc1):
        config, model, requests = rmc1
        result = run(DRAMBackend(model), requests)
        assert result.qps == pytest.approx(
            result.inferences / (result.total_ns / 1e9)
        )
        assert result.latency_per_request_ns == pytest.approx(
            result.total_ns / result.requests
        )


class TestPageSumDESMode:
    def test_des_mode_tracks_analytic(self, rmc1):
        config, model, requests = rmc1
        analytic = EMBPageSumBackend(model).run(requests[:3], compute=False)
        des = EMBPageSumBackend(model, use_des=True).run(requests[:3], compute=False)
        # Same order of magnitude; DES pays real queueing over the
        # trace's channel distribution.
        ratio = des.embedding_ns / analytic.embedding_ns
        assert 0.5 < ratio < 3.0

    def test_des_mode_same_outputs(self, rmc1):
        config, model, requests = rmc1
        a = EMBPageSumBackend(model).run(requests[:1], compute=True)
        b = EMBPageSumBackend(model, use_des=True).run(requests[:1], compute=True)
        np.testing.assert_array_equal(a.outputs, b.outputs)
