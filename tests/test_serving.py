"""Tests for the open-loop serving / SLA simulator."""

import pytest

from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.compose import StageTimes
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.host.serving import ServingSimulator
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def simple_times(temb=200_000, tbot=50_000, ttop=30_000, nbatch=1):
    return StageTimes(
        temb=temb, tbot=tbot, ttop=ttop, nbatch=nbatch, flash_cycles=temb
    )


def rmc1_serving():
    config = get_config("rmc1")
    model = build_model(config, rows_per_table=32)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    result = kernel_search(dec, flash)
    return ServingSimulator(result.times, nbatch=result.nbatch, seed=1)


class TestServingSimulator:
    def test_light_load_latency_near_service_time(self):
        serving = ServingSimulator(simple_times(), seed=0)
        point = serving.offered_load(serving.saturation_qps * 0.1, queries=100)
        unloaded_ns = (200_000 + 30_000) * 5.0
        assert point.p50_ns == pytest.approx(unloaded_ns, rel=0.1)

    def test_latency_grows_with_load(self):
        serving = ServingSimulator(simple_times(), seed=0)
        sweep = serving.load_sweep(fractions=(0.3, 0.9), queries=150)
        assert sweep[1].p99_ns > sweep[0].p99_ns
        assert sweep[1].mean_ns > sweep[0].mean_ns

    def test_achieved_tracks_offered_when_underloaded(self):
        serving = ServingSimulator(simple_times(), seed=2)
        point = serving.offered_load(serving.saturation_qps * 0.5, queries=200)
        assert point.achieved_qps == pytest.approx(point.offered_qps, rel=0.15)

    def test_invalid_load_rejected(self):
        serving = ServingSimulator(simple_times())
        with pytest.raises(ValueError):
            serving.offered_load(0)

    def test_zero_queries_rejected(self):
        serving = ServingSimulator(simple_times())
        with pytest.raises(ValueError):
            serving.offered_load(1000.0, queries=0)

    def test_remainder_queries_served_as_short_batch(self):
        """queries % nbatch must not be dropped: 10 queries at nbatch=4
        are served as batches of 4+4+2, and the achieved total is the
        offered total."""
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        serving = ServingSimulator(
            simple_times(nbatch=4), nbatch=4, seed=0, metrics=metrics
        )
        point = serving.offered_load(serving.saturation_qps * 0.3, queries=10)
        assert metrics.counter("serving.batches").value == 3
        assert len(point.latencies_ns) == 3
        # achieved = served queries / makespan, with all 10 counted.
        assert point.achieved_qps == pytest.approx(point.offered_qps, rel=0.7)

    def test_fewer_queries_than_batch_still_served(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        serving = ServingSimulator(
            simple_times(nbatch=8), nbatch=8, seed=1, metrics=metrics
        )
        point = serving.offered_load(serving.saturation_qps * 0.5, queries=3)
        assert metrics.counter("serving.batches").value == 1
        assert point.p50_ns > 0

    def test_offered_and_achieved_totals_agree_underloaded(self):
        serving = ServingSimulator(simple_times(nbatch=4), nbatch=4, seed=5)
        point = serving.offered_load(serving.saturation_qps * 0.4, queries=207)
        assert point.achieved_qps == pytest.approx(point.offered_qps, rel=0.15)

    def test_meets_sla_any_quantile(self):
        """SLA checks accept arbitrary quantiles, not just 50/95/99."""
        serving = ServingSimulator(simple_times(), seed=6)
        point = serving.offered_load(serving.saturation_qps * 0.5, queries=100)
        assert point.latencies_ns
        # Pinned quantiles agree with the stored fields.
        assert point.meets_sla(point.p50_ns, quantile=50.0)
        assert point.meets_sla(point.p99_ns, quantile=99.0)
        # In-between quantiles are computed from the raw latencies and
        # are monotone between the pinned points.
        assert point.meets_sla(point.p95_ns, quantile=90.0)
        if point.p99_ns > point.p50_ns:
            assert not point.meets_sla(point.p50_ns * 0.99, quantile=98.0) or (
                point.p95_ns <= point.p50_ns
            )
        with pytest.raises(ValueError):
            point.meets_sla(1.0, quantile=101.0)

    def test_meets_sla_interpolates_without_raw_latencies(self):
        from repro.host.serving import LoadPoint

        point = LoadPoint(
            offered_qps=1.0, achieved_qps=1.0,
            p50_ns=100.0, p95_ns=200.0, p99_ns=300.0, mean_ns=120.0,
        )
        # q=97 interpolates halfway between p95 and p99 -> 250 ns.
        assert point.meets_sla(250.0, quantile=97.0)
        assert not point.meets_sla(249.0, quantile=97.0)
        # Below p50 clamps to p50; above p99 clamps to p99.
        assert point.meets_sla(100.0, quantile=10.0)
        assert not point.meets_sla(299.0, quantile=99.5)

    def test_meets_sla_edge_quantiles_with_raw_latencies(self):
        """q=0 and q=100 miss the pinned 50/95/99 dict and must read
        the raw latency extremes."""
        from repro.host.serving import LoadPoint

        point = LoadPoint(
            offered_qps=1.0, achieved_qps=1.0,
            p50_ns=200.0, p95_ns=400.0, p99_ns=500.0, mean_ns=250.0,
            latencies_ns=(100.0, 200.0, 300.0, 400.0, 500.0),
        )
        # q=0 is the observed minimum, q=100 the observed maximum.
        assert point.meets_sla(100.0, quantile=0.0)
        assert not point.meets_sla(99.0, quantile=0.0)
        assert point.meets_sla(500.0, quantile=100.0)
        assert not point.meets_sla(499.0, quantile=100.0)

    def test_meets_sla_edge_quantiles_interpolation_clamps(self):
        """Without raw latencies, q=0 clamps to the pinned p50 and
        q=100 clamps to the pinned p99 (np.interp endpoint clamping)."""
        from repro.host.serving import LoadPoint

        point = LoadPoint(
            offered_qps=1.0, achieved_qps=1.0,
            p50_ns=100.0, p95_ns=200.0, p99_ns=300.0, mean_ns=120.0,
        )
        assert point.meets_sla(100.0, quantile=0.0)
        assert not point.meets_sla(99.0, quantile=0.0)
        assert point.meets_sla(300.0, quantile=100.0)
        assert not point.meets_sla(299.0, quantile=100.0)

    def test_sla_search_between_zero_and_saturation(self):
        serving = ServingSimulator(simple_times(), seed=3)
        unloaded_ns = (200_000 + 30_000) * 5.0
        max_qps = serving.max_qps_under_sla(sla_ns=3 * unloaded_ns, queries=120)
        assert 0.0 < max_qps <= serving.saturation_qps

    def test_impossible_sla_returns_zero(self):
        serving = ServingSimulator(simple_times(), seed=4)
        unloaded_ns = (200_000 + 30_000) * 5.0
        assert serving.max_qps_under_sla(sla_ns=unloaded_ns / 10) == 0.0

    def test_looser_sla_allows_more_load(self):
        serving = ServingSimulator(simple_times(), seed=5)
        unloaded_ns = (200_000 + 30_000) * 5.0
        tight = serving.max_qps_under_sla(sla_ns=1.3 * unloaded_ns, queries=120)
        loose = serving.max_qps_under_sla(sla_ns=5 * unloaded_ns, queries=120)
        assert loose >= tight

    def test_first_batch_keeps_its_arrival_gap(self):
        """Regression: batch 0's Erlang gap must not be clamped to
        t=0 — the clamp deterministically pinned the first completion
        into window 0 and biased short-run tails."""
        window_ns = 1e6
        serving = ServingSimulator(simple_times(), seed=9, window_ns=window_ns)
        # Mean inter-arrival 20 ms >> the 1 ms windows: batch 0 arrives
        # well after window 0, so its completion cannot land there.
        point = serving.offered_load(50.0, queries=5)
        assert point.windows[0].index > 0

    def test_rmc1_sla_study_runs(self):
        serving = rmc1_serving()
        point = serving.offered_load(serving.saturation_qps * 0.5, queries=64)
        # RMC1 unloaded latency ~1.2 ms; p99 at half load stays within
        # a small multiple of it.
        assert point.p99_ns < 5e6
        assert point.p50_ns > 1e6


class TestWindowStats:
    def test_windows_off_by_default(self):
        serving = ServingSimulator(simple_times(), seed=6)
        point = serving.offered_load(serving.saturation_qps * 0.5, queries=20)
        assert point.windows == ()
        assert point.worst_window() is None

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ServingSimulator(simple_times(), window_ns=0.0)

    def test_windows_partition_completions(self):
        window_ns = 5e6
        serving = ServingSimulator(simple_times(), seed=6, window_ns=window_ns)
        point = serving.offered_load(serving.saturation_qps * 0.5, queries=40)
        assert point.windows
        # Every batch lands in exactly one window.
        assert sum(w.count for w in point.windows) == len(point.latencies_ns)
        indices = [w.index for w in point.windows]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        for window in point.windows:
            assert window.start_ns == pytest.approx(window.index * window_ns)
            assert window.count >= 1

    def test_worst_window_is_max_percentile(self):
        serving = ServingSimulator(simple_times(), seed=7, window_ns=5e6)
        point = serving.offered_load(serving.saturation_qps * 0.9, queries=60)
        worst = point.worst_window(99.0)
        assert worst is not None
        assert worst.percentile(99.0) == max(
            w.percentile(99.0) for w in point.windows
        )
        # The worst window's tail can only be >= the run aggregate p99.
        assert worst.percentile(99.0) >= point.p99_ns * 0.999

    def test_worst_window_earliest_wins_ties(self):
        from repro.host.serving import LoadPoint, WindowStat

        a = WindowStat(index=0, start_ns=0.0, latencies_ns=(100.0,))
        b = WindowStat(index=3, start_ns=3.0, latencies_ns=(100.0,))
        point = LoadPoint(
            offered_qps=1.0, achieved_qps=1.0, p50_ns=100.0,
            p95_ns=100.0, p99_ns=100.0, mean_ns=100.0,
            windows=(a, b),
        )
        assert point.worst_window().index == 0

    def test_worst_window_empty_and_singleton(self):
        from repro.host.serving import LoadPoint, WindowStat

        empty = LoadPoint(
            offered_qps=1.0, achieved_qps=1.0, p50_ns=100.0,
            p95_ns=100.0, p99_ns=100.0, mean_ns=100.0, windows=(),
        )
        assert empty.worst_window() is None
        only = WindowStat(index=7, start_ns=7.0, latencies_ns=(42.0,))
        singleton = LoadPoint(
            offered_qps=1.0, achieved_qps=1.0, p50_ns=42.0,
            p95_ns=42.0, p99_ns=42.0, mean_ns=42.0, windows=(only,),
        )
        # A singleton window is the worst window at any quantile, and
        # a one-sample window reports that sample at every quantile.
        assert singleton.worst_window(0.0) is only
        assert singleton.worst_window(100.0) is only
        assert only.percentile(0.0) == pytest.approx(42.0)
        assert only.percentile(100.0) == pytest.approx(42.0)
