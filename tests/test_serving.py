"""Tests for the open-loop serving / SLA simulator."""

import pytest

from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.compose import StageTimes
from repro.fpga.decompose import decompose_model
from repro.fpga.search import kernel_search
from repro.host.serving import ServingSimulator
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def simple_times(temb=200_000, tbot=50_000, ttop=30_000, nbatch=1):
    return StageTimes(
        temb=temb, tbot=tbot, ttop=ttop, nbatch=nbatch, flash_cycles=temb
    )


def rmc1_serving():
    config = get_config("rmc1")
    model = build_model(config, rows_per_table=32)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    result = kernel_search(dec, flash)
    return ServingSimulator(result.times, nbatch=result.nbatch, seed=1)


class TestServingSimulator:
    def test_light_load_latency_near_service_time(self):
        serving = ServingSimulator(simple_times(), seed=0)
        point = serving.offered_load(serving.saturation_qps * 0.1, queries=100)
        unloaded_ns = (200_000 + 30_000) * 5.0
        assert point.p50_ns == pytest.approx(unloaded_ns, rel=0.1)

    def test_latency_grows_with_load(self):
        serving = ServingSimulator(simple_times(), seed=0)
        sweep = serving.load_sweep(fractions=(0.3, 0.9), queries=150)
        assert sweep[1].p99_ns > sweep[0].p99_ns
        assert sweep[1].mean_ns > sweep[0].mean_ns

    def test_achieved_tracks_offered_when_underloaded(self):
        serving = ServingSimulator(simple_times(), seed=2)
        point = serving.offered_load(serving.saturation_qps * 0.5, queries=200)
        assert point.achieved_qps == pytest.approx(point.offered_qps, rel=0.15)

    def test_invalid_load_rejected(self):
        serving = ServingSimulator(simple_times())
        with pytest.raises(ValueError):
            serving.offered_load(0)

    def test_sla_search_between_zero_and_saturation(self):
        serving = ServingSimulator(simple_times(), seed=3)
        unloaded_ns = (200_000 + 30_000) * 5.0
        max_qps = serving.max_qps_under_sla(sla_ns=3 * unloaded_ns, queries=120)
        assert 0.0 < max_qps <= serving.saturation_qps

    def test_impossible_sla_returns_zero(self):
        serving = ServingSimulator(simple_times(), seed=4)
        unloaded_ns = (200_000 + 30_000) * 5.0
        assert serving.max_qps_under_sla(sla_ns=unloaded_ns / 10) == 0.0

    def test_looser_sla_allows_more_load(self):
        serving = ServingSimulator(simple_times(), seed=5)
        unloaded_ns = (200_000 + 30_000) * 5.0
        tight = serving.max_qps_under_sla(sla_ns=1.3 * unloaded_ns, queries=120)
        loose = serving.max_qps_under_sla(sla_ns=5 * unloaded_ns, queries=120)
        assert loose >= tight

    def test_rmc1_sla_study_runs(self):
        serving = rmc1_serving()
        point = serving.offered_load(serving.saturation_qps * 0.5, queries=64)
        # RMC1 unloaded latency ~1.2 ms; p99 at half load stays within
        # a small multiple of it.
        assert point.p99_ns < 5e6
        assert point.p50_ns > 1e6
