"""Tests for model serialization (save_model / load_model)."""

import numpy as np
import pytest

from repro.models import build_model, get_config
from repro.models.io import load_model, save_model


def roundtrip(tmp_path, key, **kwargs):
    config = get_config(key)
    model = build_model(config, rows_per_table=32, seed=9, **kwargs)
    path = tmp_path / f"{key}.npz"
    save_model(model, path)
    return config, model, load_model(path)


class TestRoundTrip:
    def test_dlrm_outputs_bit_exact(self, tmp_path):
        config, model, restored = roundtrip(tmp_path, "rmc1")
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((3, config.dense_dim)).astype(np.float32)
        sparse = [
            [list(rng.integers(0, 32, size=5)) for _ in range(config.num_tables)]
            for _ in range(3)
        ]
        np.testing.assert_array_equal(
            model.forward(dense, sparse), restored.forward(dense, sparse)
        )

    def test_dlrm_mean_pooling_preserved(self, tmp_path):
        config, model, restored = roundtrip(tmp_path, "rmc1", pooling="mean")
        assert restored.pooling == "mean"

    def test_ncf_outputs_bit_exact(self, tmp_path):
        config, model, restored = roundtrip(tmp_path, "ncf")
        sparse = [[[3], [7], [3], [7]], [[1], [2], [1], [2]]]
        np.testing.assert_array_equal(
            model.forward(None, sparse), restored.forward(None, sparse)
        )

    def test_wnd_outputs_bit_exact(self, tmp_path):
        config, model, restored = roundtrip(tmp_path, "wnd")
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((2, config.dense_dim)).astype(np.float32)
        sparse = [
            [[int(rng.integers(0, 32))] for _ in range(config.num_tables)]
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            model.forward(dense, sparse), restored.forward(dense, sparse)
        )

    def test_table_contents_bit_exact(self, tmp_path):
        config, model, restored = roundtrip(tmp_path, "rmc1")
        for original, loaded in zip(model.tables, restored.tables):
            assert original.name == loaded.name
            np.testing.assert_array_equal(original.data, loaded.data)

    def test_name_preserved(self, tmp_path):
        _, model, restored = roundtrip(tmp_path, "rmc2")
        assert restored.name == model.name


class TestErrors:
    def test_unknown_object_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "x.npz")

    def test_version_checked(self, tmp_path):
        import json

        import numpy as np

        bad = tmp_path / "bad.npz"
        header = np.frombuffer(
            json.dumps({"version": 99, "kind": "DLRM"}).encode(), dtype=np.uint8
        )
        np.savez(bad, _header=header)
        with pytest.raises(ValueError):
            load_model(bad)
