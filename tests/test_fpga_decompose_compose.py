"""Tests for intra-layer decomposition and inter-layer composition."""

import numpy as np
import pytest

from repro.core.mlp_engine import dlrm_forward_decomposed
from repro.embedding.pooling import sls_all_tables
from repro.fpga.compose import (
    chain_cycles,
    pair_layers,
    stage_times,
    uncomposed_chain_cycles,
)
from repro.fpga.decompose import (
    PLACEMENT_BRAM,
    LayerAssignment,
    decompose,
    decompose_model,
)
from repro.fpga.kernel import KernelSize
from repro.fpga.specs import FPGASettings
from repro.models import build_model, get_config


class TestDecompose:
    def test_rmc1_topology(self):
        model = build_model(get_config("rmc1"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=80)
        # Bottom: Lb0 (128x64), Lb1 (64x32), Lb (32x256).
        assert [l.name for l in dec.bottom] == ["Lb0", "Lb1", "Lb"]
        assert (dec.bottom[-1].rows, dec.bottom[-1].cols) == (32, 256)
        # Le: embedding rows of top L0 (8 tables x 32 dim = 256).
        assert (dec.emb.rows, dec.emb.cols) == (256, 256)
        # Top: Lt1 (256x64), Lt2 (64x1).
        assert [l.name for l in dec.top] == ["Lt1", "Lt2"]
        assert (dec.top[-1].rows, dec.top[-1].cols) == (64, 1)

    def test_rmc3_topology(self):
        model = build_model(get_config("rmc3"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=20)
        assert [l.name for l in dec.bottom] == ["Lb0", "Lb1", "Lb2", "Lb"]
        assert (dec.bottom[0].rows, dec.bottom[0].cols) == (2560, 1024)
        assert (dec.emb.rows, dec.emb.cols) == (10 * 32, 512)
        assert dec.vectors_per_inference == 200

    def test_decomposition_preserves_l0_macs(self):
        # Rb*C + Re*C == R*C: no work is lost or duplicated.
        model = build_model(get_config("rmc2"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=120)
        top0_rows, top0_cols = model.fc_shapes_top()[0]
        split_macs = dec.bottom[-1].macs + dec.emb.macs
        assert split_macs == top0_rows * top0_cols

    def test_no_bottom_model(self):
        model = build_model(get_config("ncf"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=1)
        assert dec.bottom == []
        assert dec.emb is not None

    def test_wnd_keeps_dense_passthrough_as_lb(self):
        model = build_model(get_config("wnd"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=1)
        # Dense features (13) bypass any bottom MLP but still feed L0.
        assert len(dec.bottom) == 1
        assert dec.bottom[0].rows == 13

    def test_embedding_wider_than_l0_rejected(self):
        with pytest.raises(ValueError):
            decompose("bad", [], [(64, 8)], embedding_out_dim=128,
                      num_tables=2, lookups_per_table=1, ev_size=256)

    def test_numeric_equivalence_of_decomposition(self):
        """Fig. 8's claim: splitting L0 changes nothing numerically."""
        model = build_model(get_config("rmc1"), rows_per_table=64, seed=3)
        rng = np.random.default_rng(0)
        dense = rng.standard_normal(model.dense_dim).astype(np.float32)
        sparse = [[1, 2, 3]] * model.num_tables
        pooled = sls_all_tables(model.tables, sparse)
        reference = model.forward_one(dense, sparse)
        decomposed = dlrm_forward_decomposed(model, dense, pooled)
        np.testing.assert_allclose(decomposed, reference, rtol=1e-5, atol=1e-6)


def _chain(shapes, kernel=KernelSize(4, 2)):
    layers = []
    for i, (rows, cols) in enumerate(shapes):
        layer = LayerAssignment(f"L{i}", rows, cols, PLACEMENT_BRAM, kernel)
        layers.append(layer)
    return layers


class TestCompose:
    def test_pairing(self):
        layers = _chain([(8, 8)] * 5)
        pairs = pair_layers(layers)
        assert [len(p) for p in pairs] == [2, 2, 1]

    def test_chain_cycles_is_sum_of_pair_maxima(self):
        settings = FPGASettings()
        layers = _chain([(128, 64), (64, 32), (32, 256)])
        t0 = 128 * 64 // 8 * 8
        t1 = 64 * 32 // 8 * 8
        t2 = 32 * 256 // 8 * 8
        assert chain_cycles(layers, 1, settings) == max(t0, t1) + t2

    def test_composed_no_slower_than_uncomposed(self):
        settings = FPGASettings()
        layers = _chain([(128, 64), (64, 32), (32, 256), (256, 64)])
        composed = chain_cycles(layers, 1, settings)
        uncomposed = uncomposed_chain_cycles(layers, 1, settings)
        assert composed < uncomposed
        # Perfectly balanced pairs halve the chain time (Section IV-C3).
        balanced = _chain([(64, 64), (64, 64)])
        assert chain_cycles(balanced, 1, settings) == pytest.approx(
            uncomposed_chain_cycles(balanced, 1, settings) / 2
        )

    def test_stage_times_interval_and_latency(self):
        model = build_model(get_config("rmc1"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=80)
        for layer in dec.all_layers():
            layer.kernel = KernelSize(4, 2)
        times = stage_times(dec, nbatch=1, read_bandwidth_vectors_per_cycle=0.005)
        assert times.temb >= times.flash_cycles
        assert times.interval == max(times.temb, times.tbot, times.ttop)
        assert times.latency == max(times.temb, times.tbot) + times.ttop

    def test_throughput_qps(self):
        model = build_model(get_config("rmc1"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=80)
        for layer in dec.all_layers():
            layer.kernel = KernelSize(4, 2)
        times = stage_times(dec, nbatch=2, read_bandwidth_vectors_per_cycle=0.005)
        qps = times.throughput_qps(200e6)
        assert qps == pytest.approx(2 * 200e6 / times.interval)

    def test_missing_kernel_rejected(self):
        model = build_model(get_config("rmc1"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=80)
        with pytest.raises(ValueError):
            stage_times(dec, 1, 0.005)

    def test_embedding_flash_dominates_temb_for_rmc1(self):
        model = build_model(get_config("rmc1"), rows_per_table=16)
        dec = decompose_model(model, lookups_per_table=80)
        for layer in dec.all_layers():
            layer.kernel = KernelSize(4, 2)
        times = stage_times(dec, nbatch=1, read_bandwidth_vectors_per_cycle=0.00564)
        assert times.temb == times.flash_cycles  # embedding-dominated
