"""Tests for the discrete-event simulation kernel."""
# lint: ok-file[R3] — the kernel's own tests exercise Event.succeed directly.

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError


class TestTimeout:
    def test_single_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(10)
        sim.run()
        assert sim.now == 10

    def test_timeouts_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.timeout(5).add_callback(lambda e: order.append("b"))
        sim.timeout(1).add_callback(lambda e: order.append("a"))
        sim.timeout(9).add_callback(lambda e: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_in_creation_order(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.timeout(3, value=tag).add_callback(lambda e: order.append(e.value))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.timeout(100).add_callback(lambda e: fired.append(1))
        sim.run(until=50)
        assert not fired
        assert sim.now == 50
        sim.run()
        assert fired

    def test_run_until_beyond_queue_advances_clock(self):
        sim = Simulator()
        sim.timeout(10)
        sim.run(until=500)
        assert sim.now == 500


class TestProcess:
    def test_process_returns_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(7)
            return 42

        proc = sim.process(worker())
        sim.run()
        assert proc.value == 42
        assert sim.now == 7

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(5)
            return "payload"

        def parent():
            result = yield sim.process(child())
            return (sim.now, result)

        proc = sim.process(parent())
        sim.run()
        assert proc.value == (5, "payload")

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def worker():
            for _ in range(4):
                yield sim.timeout(2.5)
            return sim.now

        proc = sim.process(worker())
        sim.run()
        assert proc.value == 10.0

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 5

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_many_concurrent_processes(self):
        sim = Simulator()
        results = []

        def worker(delay):
            yield sim.timeout(delay)
            results.append(delay)

        for delay in [30, 10, 20]:
            sim.process(worker(delay))
        sim.run()
        assert results == [10, 20, 30]
        assert sim.now == 30


class TestEvent:
    def test_manual_event_delivers_value(self):
        sim = Simulator()
        event = sim.event()
        got = []

        def waiter():
            value = yield event
            got.append(value)

        sim.process(waiter())

        def trigger():
            yield sim.timeout(3)
            event.succeed("done")

        sim.process(trigger())
        sim.run()
        assert got == ["done"]

    def test_double_trigger_raises(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_callback_after_trigger_runs_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestAllOf:
    def test_all_of_collects_values_in_order(self):
        sim = Simulator()

        def waiter():
            values = yield sim.all_of(
                [sim.timeout(9, "slow"), sim.timeout(1, "fast")]
            )
            return (sim.now, values)

        proc = sim.process(waiter())
        sim.run()
        assert proc.value == (9, ["slow", "fast"])

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()

        def waiter():
            values = yield sim.all_of([])
            return values

        proc = sim.process(waiter())
        sim.run()
        assert proc.value == []
        assert sim.now == 0

    def test_peek_reports_next_event_time(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.timeout(4)
        assert sim.peek() == 4
