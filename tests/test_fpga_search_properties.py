"""Property-based tests: kernel-search invariants on random topologies.

The search must uphold its structural guarantees for *any* plausible
recommendation-model shape, not just the Table III configurations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.decompose import PLACEMENT_BRAM, PLACEMENT_DRAM, decompose
from repro.fpga.search import kernel_search
from repro.fpga.specs import FPGASettings


def random_model(draw):
    """Draw a random DLRM-shaped topology."""
    dim = draw(st.sampled_from([16, 32, 64]))
    tables = draw(st.integers(min_value=1, max_value=32))
    lookups = draw(st.integers(min_value=1, max_value=128))
    dense = draw(st.sampled_from([13, 64, 128, 256]))
    bottom_widths = draw(
        st.lists(st.sampled_from([16, 32, 64, 128, 256]), min_size=1, max_size=4)
    )
    top_widths = draw(
        st.lists(st.sampled_from([32, 64, 128, 256]), min_size=1, max_size=3)
    ) + [1]
    bottom_shapes = []
    previous = dense
    for width in bottom_widths:
        bottom_shapes.append((previous, width))
        previous = width
    emb_out = tables * dim
    top_shapes = []
    previous = emb_out + bottom_widths[-1]
    for width in top_widths:
        top_shapes.append((previous, width))
        previous = width
    return decompose(
        name="random",
        bottom_shapes=bottom_shapes,
        top_shapes=top_shapes,
        embedding_out_dim=emb_out,
        num_tables=tables,
        lookups_per_table=lookups,
        ev_size=dim * 4,
    )


model_strategy = st.builds(lambda d: d, st.data())


@settings(max_examples=60, deadline=None)
@given(data=st.data(), flash=st.integers(min_value=100, max_value=2_000_000))
def test_search_invariants(data, flash):
    model = random_model(data.draw)
    result = kernel_search(model, flash)
    settings_ = FPGASettings()

    # 1. Every layer received a kernel with power-of-two sides.
    for layer in result.model.all_layers():
        assert layer.kernel is not None
        assert layer.kernel.kr & (layer.kernel.kr - 1) == 0
        assert layer.kernel.kc & (layer.kernel.kc - 1) == 0
        assert layer.kernel.kr <= settings_.kmax or (
            layer.placement == PLACEMENT_DRAM
        )

    # 2. DRAM layers are pinned to the Rule Two kernel.
    for layer in result.model.all_layers():
        if layer.placement == PLACEMENT_DRAM:
            assert layer.kernel.kr == settings_.dram_words_per_cycle
            assert layer.kernel.kc == settings_.ii

    # 3. Eq. 3 chain constraint: kc_i >= kr_{i+1} within each chain —
    #    except where the downstream kernel hit the per-side cap and
    #    kr was lifted (a buffered rate mismatch, see _shape_one).
    for chain in (result.model.bottom, result.model.top):
        for upstream, downstream in zip(chain, chain[1:]):
            assert (
                upstream.kernel.kc >= downstream.kernel.kr
                or downstream.kernel.kc == settings_.kmax
            )

    # 4. Nbatch is a power of two within the cap.
    assert result.nbatch & (result.nbatch - 1) == 0
    assert 1 <= result.nbatch <= 256

    # 5. Feasibility flag is honest: when set, both chains hide under
    #    the embedding stage.
    if result.feasible:
        assert result.times.tbot <= result.times.temb
        assert result.times.ttop <= result.times.temb

    # 6. Resources are positive and monotone with layer count.
    assert result.resources.lut > 0
    assert result.resources.dsp > 0


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_search_deterministic(data):
    model_a = random_model(data.draw)
    import copy

    model_b = copy.deepcopy(model_a)
    result_a = kernel_search(model_a, 10_000)
    result_b = kernel_search(model_b, 10_000)
    assert {n: str(k) for n, k in result_a.kernels.items()} == {
        n: str(k) for n, k in result_b.kernels.items()
    }
    assert result_a.nbatch == result_b.nbatch


@settings(max_examples=30, deadline=None)
@given(
    data=st.data(),
    budget=st.integers(min_value=8, max_value=4096),
)
def test_bram_budget_respected(data, budget):
    model = random_model(data.draw)
    result = kernel_search(model, 50_000, bram_budget_tiles=budget)
    from repro.fpga.resources import weight_bram_tiles

    on_chip = sum(
        weight_bram_tiles(layer.weight_bytes)
        for layer in result.model.all_layers()
        if layer.placement == PLACEMENT_BRAM
    )
    # Rule One: on-chip weights fit the budget, or a single layer
    # already exceeds it and everything else was spilled.
    bram_layers = [
        l for l in result.model.all_layers() if l.placement == PLACEMENT_BRAM
    ]
    assert on_chip <= budget or len(bram_layers) == 0


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_more_flash_time_never_needs_more_batch(data):
    """A slower embedding stage gives the MLP more headroom."""
    model_a = random_model(data.draw)
    import copy

    model_b = copy.deepcopy(model_a)
    fast = kernel_search(model_a, 5_000)
    slow = kernel_search(model_b, 500_000)
    assert slow.nbatch <= fast.nbatch
