"""Tests for the SSD controller front end and FMCs."""

import pytest

from repro.sim import Simulator
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry


def make_controller():
    sim = Simulator()
    geo = SSDGeometry(
        channels=4,
        dies_per_channel=4,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
    )
    return SSDController(sim, geo)


class TestFunctionalPath:
    def test_write_read_roundtrip(self):
        ctrl = make_controller()
        payload = bytes(range(256)) * 40  # 10240 B, crosses pages
        ctrl.write_logical(1000, payload)
        assert ctrl.peek_logical(1000, len(payload)) == payload

    def test_write_unaligned_offsets(self):
        ctrl = make_controller()
        ctrl.write_logical(4090, b"0123456789")  # straddles page 0/1 boundary
        assert ctrl.peek_logical(4090, 10) == b"0123456789"

    def test_timing_and_geometry_consistent(self):
        ctrl = make_controller()
        assert ctrl.timing.page_size == ctrl.geometry.page_size


class TestBlockPath:
    def test_block_read_returns_data_and_counts_host_traffic(self):
        ctrl = make_controller()
        ctrl.write_logical(0, b"blockdata")
        proc = ctrl.sim.process(ctrl.read_block_proc(0))
        ctrl.sim.run()
        assert proc.value.data[:9] == b"blockdata"
        assert ctrl.stats.host_read_bytes == 4096
        assert ctrl.stats.flash_page_reads == 1

    def test_byte_range_read_amplifies_to_pages(self):
        ctrl = make_controller()
        ctrl.write_logical(4000, b"A" * 200)  # straddles two pages
        proc = ctrl.sim.process(ctrl.read_bytes_block_proc(4000, 200))
        ctrl.sim.run()
        assert proc.value == b"A" * 200
        # 200 useful bytes cost two full pages over the host link.
        assert ctrl.stats.host_read_bytes == 2 * 4096
        assert ctrl.stats.flash_page_reads == 2


class TestVectorPath:
    def test_vector_read_returns_exact_bytes(self):
        ctrl = make_controller()
        ctrl.write_logical(8192 + 256, b"V" * 128)
        proc = ctrl.sim.process(ctrl.read_vector_proc(8192 + 256, 128))
        ctrl.sim.run()
        assert proc.value.data == b"V" * 128
        assert ctrl.stats.flash_vector_reads == 1
        # Vector reads never cross the host link by themselves.
        assert ctrl.stats.host_read_bytes == 0

    def test_vector_straddling_page_rejected(self):
        ctrl = make_controller()

        def run():
            yield from ctrl.read_vector_proc(4096 - 10, 128)

        ctrl.sim.process(run())
        with pytest.raises(ValueError):
            ctrl.sim.run()

    def test_vector_read_faster_than_block_read(self):
        ctrl_vec = make_controller()
        proc = ctrl_vec.sim.process(ctrl_vec.read_vector_proc(0, 128))
        ctrl_vec.sim.run()
        t_vec = ctrl_vec.sim.now

        ctrl_blk = make_controller()
        ctrl_blk.sim.process(ctrl_blk.read_block_proc(0))
        ctrl_blk.sim.run()
        t_blk = ctrl_blk.sim.now
        assert t_vec < t_blk
        assert proc.value.latency_ns > 0

    def test_internal_page_read_stays_in_device(self):
        ctrl = make_controller()
        ctrl.sim.process(ctrl.read_page_internal_proc(0))
        ctrl.sim.run()
        assert ctrl.stats.host_read_bytes == 0
        assert ctrl.stats.flash_page_reads == 1


class TestStriping:
    def test_bulk_vector_reads_use_all_channels(self):
        ctrl = make_controller()
        # 64 vectors on consecutive pages -> striped across channels.
        events = [
            ctrl.sim.process(ctrl.read_vector_proc(page * 4096, 128))
            for page in range(64)
        ]
        ctrl.sim.run()
        del events
        busy = [ch.bus.jobs_served for ch in ctrl.flash.channels]
        assert all(count > 0 for count in busy)
        assert sum(busy) == 64


class TestFTLArbitration:
    """Block and EV requests share one translation pipeline (the MUX)."""

    def test_ftl_serializes_translations(self):
        ctrl = make_controller()
        # Many concurrent vector reads: the shared FTL stage serves
        # them one at a time, so its busy time is requests x lookup.
        events = [
            ctrl.sim.process(ctrl.read_vector_proc(page * 4096, 128))
            for page in range(32)
        ]
        ctrl.sim.run()
        del events
        lookup_ns = ctrl.timing.cycles_to_ns(ctrl.ftl.lookup_cycles)
        assert ctrl._ftl_server.busy_time == pytest.approx(32 * lookup_ns)
        assert ctrl._ftl_server.jobs_served == 32

    def test_block_and_vector_share_the_mux(self):
        ctrl = make_controller()
        ctrl.sim.process(ctrl.read_block_proc(0))
        ctrl.sim.process(ctrl.read_vector_proc(4096, 128))
        ctrl.sim.run()
        assert ctrl._ftl_server.jobs_served == 2
