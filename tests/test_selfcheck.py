"""Tests for the installation self-check battery."""

import pytest

from repro.analysis.selfcheck import ALL_CHECKS, CheckResult, run_selfcheck
from repro.cli import main


class TestSelfcheck:
    def test_all_checks_pass(self, capsys):
        results = run_selfcheck(verbose=True)
        out = capsys.readouterr().out
        assert all(r.passed for r in results), out
        assert f"{len(ALL_CHECKS)}/{len(ALL_CHECKS)} checks passed" in out

    def test_quiet_mode(self, capsys):
        results = run_selfcheck(verbose=False)
        assert capsys.readouterr().out == ""
        assert len(results) == len(ALL_CHECKS)

    def test_exceptions_become_failures(self, monkeypatch, capsys):
        import repro.analysis.selfcheck as module

        def exploding():
            raise RuntimeError("boom")

        monkeypatch.setattr(module, "ALL_CHECKS", [exploding])
        results = run_selfcheck(verbose=True)
        assert len(results) == 1
        assert not results[0].passed
        assert "boom" in results[0].detail

    def test_cli_exit_code(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "checks passed" in capsys.readouterr().out

    def test_result_dataclass(self):
        result = CheckResult("x", True, "d")
        assert result.passed and result.detail == "d"
