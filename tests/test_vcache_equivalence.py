"""Differential tests for the controller-DRAM vector cache.

The cache extends PR 2's bitwise-equivalence contract in both
directions:

* **disabled** (``vcache=None``, the default) the lookup path must be
  byte-identical to the cache-free build — pooled outputs, elapsed
  times, statistics, and span trees;
* **enabled**, the DES and the vectorized fast path must agree exactly
  with each other — same hit sets (they probe in the same issue
  order), same pooled bytes, same elapsed times, same span trees —
  while pooled *values* never change versus the cache-free device (a
  hit returns the same fp32 bytes the flash read would have).

The replayed LRU hit ratio is also pinned against
:func:`repro.workloads.locality.measured_cache_hit_ratio`, which is
what the Fig. 14-style locality benchmark keys on.
"""

import numpy as np
import pytest
from pytest import approx

from repro.obs.tracer import Tracer
from repro.ssd.vcache import POLICIES, VectorCache
from repro.workloads.locality import hit_ratio_for_k, measured_cache_hit_ratio
from repro.workloads.tracegen import TraceGenerator
from tests.test_fastpath_equivalence import (
    GEOMETRY_NAMES,
    NUM_TABLES,
    ROWS,
    assert_equivalent,
    build_engine,
    make_batch,
)


def batch_stream(seed, count=4, samples=3, max_len=5, dist="skewed"):
    rng = np.random.default_rng(seed)
    return [make_batch(rng, samples, max_len, dist) for _ in range(count)]


def strip_vcache(stats_dict):
    return {
        k: v for k, v in stats_dict.items() if not k.startswith("vcache")
    }


# ----------------------------------------------------------------------
# Disabled: byte-identical to the cache-free build
# ----------------------------------------------------------------------
class TestDisabledIsInert:
    def test_none_matches_implicit_default(self):
        """``vcache=None`` and a capacity-0 cache are timing-identical
        to a controller built without the kwarg at all."""
        batches = batch_stream(0)
        default = build_engine("square")
        explicit = build_engine("square", vcache=None)
        empty = build_engine("square", vcache=VectorCache(0))
        for batch in batches:
            a = default.lookup_batch(batch, fast=False)
            b = explicit.lookup_batch(batch, fast=False)
            c = empty.lookup_batch(batch, fast=False)
            assert b.pooled.tobytes() == a.pooled.tobytes()
            assert c.pooled.tobytes() == a.pooled.tobytes()
            assert b.elapsed_ns == approx(a.elapsed_ns, rel=0, abs=0)
            assert c.elapsed_ns == approx(a.elapsed_ns, rel=0, abs=0)
            assert (b.vcache_hits, b.vcache_ns) == (0, 0.0)
            assert (c.vcache_hits, c.vcache_ns) == (0, 0.0)
        # Inertness demands exact clock equality.
        assert explicit.controller.sim.now == default.controller.sim.now  # lint: ok[R2]
        assert empty.controller.sim.now == default.controller.sim.now  # lint: ok[R2]
        assert (
            explicit.controller.stats.as_dict()
            == default.controller.stats.as_dict()
        )
        # The capacity-0 cache still counts its (all-miss) probes.
        assert strip_vcache(empty.controller.stats.as_dict()) == strip_vcache(
            default.controller.stats.as_dict()
        )
        assert empty.controller.stats.vcache_misses > 0

    def test_disabled_span_tree_identical(self):
        batches = batch_stream(1, count=2)
        default = build_engine("wide")
        explicit = build_engine("wide", vcache=None)
        default.controller.tracer = Tracer()
        explicit.controller.tracer = Tracer()
        for batch in batches:
            default.lookup_batch(batch, fast=False)
            explicit.lookup_batch(batch, fast=False)
        assert len(default.controller.tracer) > 0
        assert (
            explicit.controller.tracer.as_tuples()
            == default.controller.tracer.as_tuples()
        )
        names = {s.name for s in explicit.controller.tracer.spans}
        assert "vcache" not in names


# ----------------------------------------------------------------------
# Enabled: DES == fast path, bitwise
# ----------------------------------------------------------------------
class TestEnabledBitwiseEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("capacity", [0, 8, 64])
    def test_policy_capacity_grid(self, policy, capacity):
        batches = batch_stream(POLICIES.index(policy) * 3 + capacity)
        des_engine = build_engine("square", vcache=VectorCache(capacity, policy))
        fast_engine = build_engine("square", vcache=VectorCache(capacity, policy))
        for batch in batches:
            des = des_engine.lookup_batch(batch, fast=False)
            fast = fast_engine.lookup_batch(batch, fast=True)
            assert fast.path == "fast"
            assert fast.vcache_hits == des.vcache_hits
            assert fast.vcache_ns == approx(des.vcache_ns, rel=0, abs=0)
            assert fast.total_vectors == des.total_vectors
            assert_equivalent(des_engine, fast_engine, des, fast)
        des_cache = des_engine.controller.vcache
        fast_cache = fast_engine.controller.vcache
        assert (des_cache.hits, des_cache.misses, des_cache.evictions) == (
            fast_cache.hits, fast_cache.misses, fast_cache.evictions
        )

    @pytest.mark.parametrize("geometry", GEOMETRY_NAMES)
    def test_geometry_grid(self, geometry):
        batches = batch_stream(GEOMETRY_NAMES.index(geometry), count=3)
        des_engine = build_engine(geometry, vcache=VectorCache(24))
        fast_engine = build_engine(geometry, vcache=VectorCache(24))
        for batch in batches:
            des = des_engine.lookup_batch(batch, fast=False)
            fast = fast_engine.lookup_batch(batch, fast=True)
            assert_equivalent(des_engine, fast_engine, des, fast)

    def test_mean_pooling(self):
        batches = batch_stream(7, dist="uniform")
        des_engine = build_engine(
            "deep", pooling="mean", vcache=VectorCache(16)
        )
        fast_engine = build_engine(
            "deep", pooling="mean", vcache=VectorCache(16)
        )
        for batch in batches:
            des = des_engine.lookup_batch(batch, fast=False)
            fast = fast_engine.lookup_batch(batch, fast=True)
            assert_equivalent(des_engine, fast_engine, des, fast)

    def test_all_hit_batch(self):
        """A fully-absorbed batch does no flash work on either path."""
        warm_batch = [[[1, 2], [3], [4]]]
        des_engine = build_engine("square", vcache=VectorCache(16))
        fast_engine = build_engine("square", vcache=VectorCache(16))
        for engine in (des_engine, fast_engine):
            engine.lookup_batch(warm_batch, fast=False)
        before_des = des_engine.controller.stats.flash_vector_reads
        des = des_engine.lookup_batch(warm_batch, fast=False)
        fast = fast_engine.lookup_batch(warm_batch, fast=True)
        assert des.vectors_read == fast.vectors_read == 0
        assert des.vcache_hits == fast.vcache_hits == 4
        assert des_engine.controller.stats.flash_vector_reads == before_des
        assert_equivalent(des_engine, fast_engine, des, fast)

    def test_enabled_span_trees_identical(self):
        batches = batch_stream(5, count=3)
        des_engine = build_engine("square", vcache=VectorCache(16))
        fast_engine = build_engine("square", vcache=VectorCache(16))
        des_engine.controller.tracer = Tracer()
        fast_engine.controller.tracer = Tracer()
        for batch in batches:
            des_engine.lookup_batch(batch, fast=False)
            fast_engine.lookup_batch(batch, fast=True)
        des_tracer = des_engine.controller.tracer
        fast_tracer = fast_engine.controller.tracer
        assert len(des_tracer) > 0
        assert fast_tracer.as_tuples() == des_tracer.as_tuples()
        assert len(des_tracer.spans_named("vcache")) == len(batches)


# ----------------------------------------------------------------------
# Values never change; only timing does
# ----------------------------------------------------------------------
class TestNumericTransparency:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_pooled_values_match_cache_free(self, policy):
        batches = batch_stream(11)
        plain = build_engine("square")
        cached = build_engine("square", vcache=VectorCache(32, policy))
        for batch in batches:
            reference = plain.lookup_batch(batch, fast=False)
            result = cached.lookup_batch(batch, fast=False)
            assert result.pooled.tobytes() == reference.pooled.tobytes()

    def test_hits_absorb_flash_and_channel_load(self):
        """Absorbed reads disappear from the flash array one for one:
        fewer vector reads, fewer bus jobs, less bus traffic."""
        batch = [[[5, 6, 7], [8, 9], [10]]]
        plain = build_engine("square")
        cached = build_engine("square", vcache=VectorCache(16))
        for engine in (plain, cached):
            engine.lookup_batch(batch, fast=False)  # warm
            engine.lookup_batch(batch, fast=False)
        assert (
            cached.controller.stats.flash_vector_reads
            == plain.controller.stats.flash_vector_reads - 6
        )
        assert (
            cached.controller.stats.flash_bus_bytes
            < plain.controller.stats.flash_bus_bytes
        )
        plain_jobs = sum(
            c.bus.jobs_served for c in plain.controller.flash.channels
        )
        cached_jobs = sum(
            c.bus.jobs_served for c in cached.controller.flash.channels
        )
        assert cached_jobs == plain_jobs - 6
        # Useful bytes still count every consumed vector.
        assert (
            cached.controller.stats.useful_bytes
            == plain.controller.stats.useful_bytes
        )

    def test_hot_batches_get_faster(self):
        batch = [[[1, 2, 3, 4], [1, 2, 3, 4], [1, 2, 3, 4]]]
        plain = build_engine("single")
        cached = build_engine("single", vcache=VectorCache(16))
        cold_plain = plain.lookup_batch(batch, fast=False)
        cold_cached = cached.lookup_batch(batch, fast=False)
        assert cold_cached.elapsed_ns == approx(
            cold_plain.elapsed_ns, rel=0, abs=0
        )
        warm_plain = plain.lookup_batch(batch, fast=False)
        warm_cached = cached.lookup_batch(batch, fast=False)
        assert warm_cached.elapsed_ns < warm_plain.elapsed_ns
        assert warm_cached.vcache_hits == 12
        assert warm_cached.elapsed_ns >= warm_cached.vcache_ns

    def test_warm_vcache_serves_from_dram_immediately(self):
        engine = build_engine("square", vcache=VectorCache(8, "static"))
        resident = engine.warm_vcache([(0, 3), (1, 4), (2, 5)])
        assert resident == 3
        result = engine.lookup_batch([[[3], [4], [5]]], fast=False)
        assert result.vectors_read == 0
        assert result.vcache_hits == 3
        assert engine.controller.stats.flash_vector_reads == 0

    def test_warm_vcache_requires_a_cache(self):
        engine = build_engine("square")
        with pytest.raises(ValueError, match="no vector cache"):
            engine.warm_vcache([(0, 1)])


# ----------------------------------------------------------------------
# Hit-ratio replay: the Fig. 14 acceptance metric
# ----------------------------------------------------------------------
class TestHitRatioReplay:
    def test_lru_matches_lru_page_cache_replay(self):
        """The device cache's measured hit ratio on a K=0 trace matches
        an LRU replay of the same key stream (within 1%; the policies
        are identical, so in fact exactly)."""
        capacity = 24
        trace_gen = TraceGenerator(
            num_tables=NUM_TABLES,
            rows_per_table=ROWS,
            lookups_per_table=8,
            hot_access_fraction=hit_ratio_for_k(0.0),
            seed=3,
        )
        trace = trace_gen.generate(60)
        expected = measured_cache_hit_ratio(
            trace_gen.flat_indices(trace), capacity
        )
        engine = build_engine("square", vcache=VectorCache(capacity))
        for sample in trace:
            engine.lookup_batch([sample], fast=True)
        measured = engine.controller.vcache.hit_ratio
        assert measured == approx(expected, abs=0.01)
        assert engine.controller.stats.vcache_hit_ratio == approx(
            measured, rel=0, abs=0
        )

    def test_higher_locality_higher_hit_ratio(self):
        ratios = {}
        for k in (0.0, 2.0):
            trace_gen = TraceGenerator(
                num_tables=NUM_TABLES,
                rows_per_table=ROWS,
                lookups_per_table=8,
                hot_access_fraction=hit_ratio_for_k(k),
                seed=4,
            )
            engine = build_engine("square", vcache=VectorCache(24))
            for sample in trace_gen.generate(40):
                engine.lookup_batch([sample], fast=True)
            ratios[k] = engine.controller.vcache.hit_ratio
        assert ratios[0.0] > ratios[2.0]
