"""Tests for the kernel search algorithm against Table V."""

import pytest

from repro.core.lookup_engine import flash_read_cycles
from repro.fpga.decompose import PLACEMENT_BRAM, PLACEMENT_DRAM, decompose_model
from repro.fpga.kernel import KernelSize
from repro.fpga.search import default_kernels, kernel_search
from repro.fpga.specs import FPGASettings, XC7A200T
from repro.models import build_model, get_config
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def run_search(config_key):
    config = get_config(config_key)
    model = build_model(config, rows_per_table=16)
    dec = decompose_model(model, config.lookups_per_table)
    flash = flash_read_cycles(
        dec.vectors_per_inference, SSDGeometry(), SSDTimingModel(), config.ev_size
    )
    return kernel_search(dec, flash)


class TestTableV:
    """Table V: kernel sizes chosen for each layer."""

    def test_rmc1_matches_table_v(self):
        result = run_search("rmc1")
        kernels = {name: str(k) for name, k in result.kernels.items()}
        assert kernels == {
            "Lb0": "4x2",
            "Lb1": "2x4",
            "Lb": "4x2",
            "Le": "4x2",
            "Lt1": "2x4",
            "Lt2": "4x1",
        }
        assert result.nbatch == 1
        assert result.feasible

    def test_rmc2_matches_table_v(self):
        # Table V gives RMC1 and RMC2 the same kernel row.
        result = run_search("rmc2")
        kernels = {name: str(k) for name, k in result.kernels.items()}
        assert kernels == {
            "Lb0": "4x2",
            "Lb1": "2x4",
            "Lb": "4x2",
            "Le": "4x2",
            "Lt1": "2x4",
            "Lt2": "4x1",
        }

    def test_rmc3_matches_table_v(self):
        result = run_search("rmc3")
        kernels = {name: str(k) for name, k in result.kernels.items()}
        # Rule Two pins the 10 MB first layer to the DRAM kernel 16x8;
        # the rest follow Table V's row for RMC3.
        assert kernels == {
            "Lb0": "16x8",
            "Lb1": "8x2",
            "Lb2": "2x4",
            "Lb": "4x2",
            "Le": "4x2",
            "Lt1": "2x4",
            "Lt2": "4x1",
        }

    def test_rmc3_first_layer_spilled_to_dram(self):
        result = run_search("rmc3")
        placements = {l.name: l.placement for l in result.model.all_layers()}
        assert placements["Lb0"] == PLACEMENT_DRAM
        assert all(
            p == PLACEMENT_BRAM for name, p in placements.items() if name != "Lb0"
        )

    def test_rmc1_rmc2_stay_fully_on_chip(self):
        for key in ("rmc1", "rmc2"):
            result = run_search(key)
            assert all(
                l.placement == PLACEMENT_BRAM for l in result.model.all_layers()
            )


class TestEq2Objective:
    """Eq. 2: the MLP stages must hide under the embedding stage."""

    def test_mlp_stages_fit_under_temb(self):
        for key in ("rmc1", "rmc2", "rmc3", "ncf", "wnd"):
            result = run_search(key)
            assert result.feasible, key
            assert result.times.tbot <= result.times.temb, key
            assert result.times.ttop <= result.times.temb, key

    def test_embedding_dominated_models_need_no_batching(self):
        assert run_search("rmc1").nbatch == 1
        assert run_search("rmc2").nbatch == 1

    def test_mlp_dominated_model_escalates_batch(self):
        # Rule Three: RMC3's DRAM-streamed first layer exceeds the
        # 200-vector embedding time, so Nbatch must grow.
        result = run_search("rmc3")
        assert result.nbatch > 1
        assert result.nbatch <= 16

    def test_scan_chain_constraint_eq3(self):
        # kc_i >= kr_{i+1} along every chain.
        for key in ("rmc1", "rmc2", "rmc3"):
            result = run_search(key)
            for chain in (result.model.bottom, result.model.top):
                for a, b in zip(chain, chain[1:]):
                    assert a.kernel.kc >= b.kernel.kr, (key, a.name, b.name)

    def test_kce_equals_kcb(self):
        # Eq. 3's second constraint: Le and Lb feed Lt1 at one rate.
        for key in ("rmc1", "rmc2", "rmc3"):
            result = run_search(key)
            lb = result.model.bottom[-1]
            le = result.model.emb
            assert le.kernel.kc == lb.kernel.kc, key

    def test_min_area_constraint_eq4(self):
        # Non-final layers keep kr*kc >= II for the reuse pipeline.
        for key in ("rmc1", "rmc2", "rmc3"):
            result = run_search(key)
            layers = result.model.all_layers()
            for layer in layers[:-1]:
                assert layer.kernel.area >= 8, (key, layer.name)

    def test_search_is_deterministic(self):
        a = run_search("rmc3").kernels
        b = run_search("rmc3").kernels
        assert a == b


class TestResourceEfficiency:
    def test_optimized_cheaper_than_default(self):
        for key in ("rmc1", "rmc2", "rmc3"):
            config = get_config(key)
            optimized = run_search(key).resources

            model = build_model(config, rows_per_table=16)
            dec = decompose_model(model, config.lookups_per_table)
            if key == "rmc3":
                default_kernels(dec, kernel_area_log2=6,
                                first_bottom_kernel=KernelSize(16, 8))
            else:
                default_kernels(dec, kernel_area_log2=8)
            from repro.fpga.resources import engine_resources

            default = engine_resources(dec)
            assert optimized.lut < default.lut, key
            assert optimized.dsp < default.dsp, key

    def test_rmc12_optimized_fits_low_end_part(self):
        for key in ("rmc1", "rmc2"):
            assert XC7A200T.fits(run_search(key).resources), key

    def test_rmc3_default_does_not_fit_low_end_part(self):
        config = get_config("rmc3")
        model = build_model(config, rows_per_table=16)
        dec = decompose_model(model, config.lookups_per_table)
        default_kernels(dec, kernel_area_log2=6, first_bottom_kernel=KernelSize(16, 8))
        from repro.fpga.resources import engine_resources

        assert not XC7A200T.fits(engine_resources(dec))

    def test_total_area_small_for_rmc1(self):
        # 5 layers at the II minimum plus a 4-wide final layer.
        result = run_search("rmc1")
        assert result.total_kernel_area == 5 * 8 + 4
