"""Edge-case coverage across modules: empty inputs, error paths,
bookkeeping corners that the main suites do not reach."""

import numpy as np
import pytest

from repro.baselines import (
    DRAMBackend,
    EMBPageSumBackend,
    EMBVectorSumBackend,
    NaiveSSDBackend,
    RMSSDBackend,
)
from repro.models import build_model, get_config
from repro.sim import Simulator, Store
from repro.sim.resources import drain
from repro.ssd.fmc import EVFlashMemoryController, ReadRequest
from repro.ssd.flash import FlashArray
from repro.ssd.geometry import SSDGeometry
from repro.workloads.inputs import InferenceRequest


def small_geometry():
    return SSDGeometry(
        channels=2, dies_per_channel=2, planes_per_die=1,
        blocks_per_plane=8, pages_per_block=16,
    )


class TestSimHelpers:
    def test_drain_collects_in_order(self):
        sim = Simulator()
        store = Store(sim)
        for item in ("a", "b", "c"):
            store.put(item)
        proc = sim.process(drain(sim, store, 3))
        sim.run()
        assert proc.value == ["a", "b", "c"]

    def test_drain_waits_for_late_items(self):
        sim = Simulator()
        store = Store(sim)

        def producer():
            yield sim.timeout(5)
            store.put(1)
            yield sim.timeout(5)
            store.put(2)

        sim.process(producer())
        proc = sim.process(drain(sim, store, 2))
        sim.run()
        assert proc.value == [1, 2]
        assert sim.now == 10


class TestFMC:
    def test_history_disabled_by_default(self):
        sim = Simulator()
        flash = FlashArray(sim, small_geometry())
        fmc = EVFlashMemoryController(sim, flash)
        sim.process(fmc.read_page(0))
        sim.run()
        assert fmc.completed == []

    def test_history_enabled_records_requests(self):
        sim = Simulator()
        flash = FlashArray(sim, small_geometry())
        fmc = EVFlashMemoryController(sim, flash)
        fmc.keep_history = True
        sim.process(fmc.read_vector(0, 0, 64, tag="t"))
        sim.run()
        assert len(fmc.completed) == 1
        request = fmc.completed[0]
        assert request.kind == "vector"
        assert request.tag == "t"
        assert request.latency_ns > 0

    def test_read_request_defaults(self):
        request = ReadRequest(kind="block", physical_page=3)
        assert request.latency_ns == 0


class TestBackendEdges:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model(get_config("rmc1"), rows_per_table=64, seed=1)

    def _empty_lookup_request(self, model):
        # Samples whose tables have zero lookups each.
        sparse = [[[] for _ in range(len(model.tables))]]
        dense = np.zeros((1, model.dense_dim), dtype=np.float32)
        return InferenceRequest(dense=dense, sparse=sparse)

    def test_zero_lookup_request_dram(self, model):
        backend = DRAMBackend(model)
        request = self._empty_lookup_request(model)
        result = backend.run([request], compute=True)
        # Zero lookups pool to zero vectors; the MLP still runs.
        assert result.outputs.shape == (1, 1)
        assert result.total_ns > 0

    def test_zero_lookup_request_isc_paths(self, model):
        request = self._empty_lookup_request(model)
        for backend in (EMBPageSumBackend(model), EMBVectorSumBackend(model)):
            result = backend.run([request], compute=False)
            assert result.total_ns > 0  # MLP + transfer costs remain

    def test_compute_false_returns_empty_outputs(self, model):
        backend = DRAMBackend(model)
        request = self._empty_lookup_request(model)
        result = backend.run([request], compute=False)
        assert result.outputs.size == 0

    def test_run_with_no_requests(self, model):
        backend = DRAMBackend(model)
        result = backend.run([], compute=False)
        assert result.inferences == 0
        assert result.total_ns == 0

    def test_naive_ssd_invalid_fraction(self, model):
        with pytest.raises(ValueError):
            NaiveSSDBackend(model, 0.0)

    def test_naive_ssd_custom_name(self, model):
        backend = NaiveSSDBackend(model, 0.25, name="SSD-X")
        assert backend.name == "SSD-X"

    def test_rmssd_backend_request_cost_keys(self, model):
        config = get_config("rmc1")
        backend = RMSSDBackend(model, config.lookups_per_table, use_des=False)
        rng = np.random.default_rng(0)
        request = InferenceRequest(
            dense=rng.standard_normal((1, config.dense_dim)).astype(np.float32),
            sparse=[
                [list(rng.integers(0, 64, size=2))
                 for _ in range(config.num_tables)]
            ],
        )
        cost = backend.request_cost_ns(request)
        assert set(cost) == {"emb-ssd", "bot-mlp", "top-mlp", "emb-fs"}
        assert all(v >= 0 for v in cost.values())

    def test_stats_accumulate_across_runs(self, model):
        backend = EMBVectorSumBackend(model)
        request = self._empty_lookup_request(model)
        backend.run([request], compute=False)
        first = backend.stats.host_read_bytes
        backend.run([request], compute=False)
        assert backend.stats.host_read_bytes == 2 * first


class TestDeviceEdges:
    def test_device_with_single_table_model(self):
        from repro.core.device import RMSSD
        from repro.embedding.table import EmbeddingTableSet
        from repro.models.dlrm import DLRM
        from repro.models.mlp import MLP
        from repro.models.layers import Activation

        tables = EmbeddingTableSet.uniform(1, 32, 16, seed=0)
        bottom = MLP.from_widths(8, [16])
        top = MLP.from_widths(16 + 16, [8, 1],
                              final_activation=Activation.SIGMOID)
        model = DLRM("tiny", tables, bottom, top)
        device = RMSSD(model, lookups_per_table=2)
        sparse = [[[0, 1]]]
        dense = np.zeros((1, 8), dtype=np.float32)
        outputs, timing = device.infer_batch(dense, sparse)
        np.testing.assert_allclose(
            outputs, model.forward(dense, sparse), rtol=1e-5, atol=1e-6
        )
        assert timing.interval_ns > 0

    def test_lookup_batch_with_one_empty_table(self):
        from repro.core.device import RMSSD

        model = build_model(get_config("rmc1"), rows_per_table=32, seed=2)
        device = RMSSD(model, lookups_per_table=2)
        sparse = [[[0, 1]] + [[]] * (len(model.tables) - 1)]
        result = device.lookup_engine.lookup_batch(sparse)
        # Empty tables pool to zeros.
        assert np.all(result.pooled[0, 32:] == 0)
        assert result.vectors_read == 2
