"""Tests for the multi-device scale-out extension."""

import numpy as np
import pytest

from repro.core.cluster import (
    MODE_REPLICA,
    MODE_TABLE_SHARD,
    ClusterTiming,
    RMSSDCluster,
)
from repro.embedding.table import EmbeddingTable, EmbeddingTableSet
from repro.models import build_model, get_config
from repro.models.dlrm import DLRM
from repro.models.mlp import MLP

ROWS = 64


def build(key="rmc1", devices=2, mode=MODE_TABLE_SHARD):
    config = get_config(key)
    model = build_model(config, rows_per_table=ROWS, seed=3)
    cluster = RMSSDCluster(
        model, lookups_per_table=4, num_devices=devices, mode=mode
    )
    return config, model, cluster


def random_batch(config, batch=2, lookups=4, seed=0):
    rng = np.random.default_rng(seed)
    sparse = [
        [list(rng.integers(0, ROWS, size=lookups)) for _ in range(config.num_tables)]
        for _ in range(batch)
    ]
    dense = rng.standard_normal((batch, config.dense_dim)).astype(np.float32)
    return dense, sparse


class TestNumerics:
    def test_table_shard_outputs_match_reference(self):
        config, model, cluster = build(devices=4)
        dense, sparse = random_batch(config)
        outputs, _ = cluster.infer_batch(dense, sparse)
        np.testing.assert_allclose(
            outputs, model.forward(dense, sparse), rtol=1e-5, atol=1e-6
        )

    def test_replica_outputs_match_reference(self):
        config, model, cluster = build(devices=3, mode=MODE_REPLICA)
        dense, sparse = random_batch(config, seed=1)
        outputs, _ = cluster.infer_batch(dense, sparse)
        np.testing.assert_allclose(
            outputs, model.forward(dense, sparse), rtol=1e-5, atol=1e-6
        )

    def test_uneven_shard_split(self):
        # 8 tables over 3 devices: 3+3+2.
        config, model, cluster = build(devices=3)
        sizes = sorted(len(s.table_ids) for s in cluster.shards)
        assert sizes == [2, 3, 3]
        dense, sparse = random_batch(config, seed=2)
        outputs, _ = cluster.infer_batch(dense, sparse)
        np.testing.assert_allclose(
            outputs, model.forward(dense, sparse), rtol=1e-5, atol=1e-6
        )


class TestScaling:
    def test_table_sharding_cuts_embedding_time(self):
        _, _, single = build(devices=1)
        _, _, quad = build(devices=4)
        config = get_config("rmc1")
        dense, sparse = random_batch(config, seed=4)
        _, t1 = single.infer_batch(dense, sparse)
        _, t4 = quad.infer_batch(dense, sparse)
        assert t4.emb_ns < t1.emb_ns

    def test_replica_throughput_scales_linearly(self):
        _, _, single = build(devices=1, mode=MODE_REPLICA)
        _, _, quad = build(devices=4, mode=MODE_REPLICA)
        q1 = single.throughput_qps(nbatch=2)
        q4 = quad.throughput_qps(nbatch=2)
        assert q4 == pytest.approx(4 * q1, rel=0.05)

    def test_capacity_accounting(self):
        _, model, shard = build(devices=2)
        _, _, replica = build(devices=2, mode=MODE_REPLICA)
        assert shard.total_capacity_bytes == model.tables.total_bytes
        assert replica.total_capacity_bytes == 2 * model.tables.total_bytes

    def test_timing_structure(self):
        config, _, cluster = build(devices=2)
        dense, sparse = random_batch(config, seed=5)
        _, timing = cluster.infer_batch(dense, sparse)
        assert len(timing.per_device_emb_ns) == 2
        assert timing.latency_ns >= timing.interval_ns
        assert timing.gather_ns > 0

    def test_interval_and_latency_accounting_separate(self):
        """Regression: latency is the serial critical path, not the
        pipelined interval term.  With emb=4, bot=6, top=5 the serial
        MLP latency is max(emb, bot) + top = 11, while the interval is
        bounded by the slowest stage (bot = 6); the old accounting
        collapsed both into max(bot, top) and understated latency."""
        timing = ClusterTiming(
            nbatch=1,
            per_device_emb_ns=[4.0],
            gather_ns=0.0,
            bot_ns=6.0,
            top_ns=5.0,
            io_ns=2.0,
        )
        assert timing.mlp_ns == pytest.approx(6.0)
        assert timing.interval_ns == pytest.approx(6.0)
        # Serial path: bot (6) overlaps emb (4), then top (5) + io (2).
        assert timing.latency_ns == pytest.approx(13.0)
        # The buggy composition emb + max(bot, top) + io would be 12.
        assert timing.latency_ns > timing.emb_ns + timing.mlp_ns + timing.io_ns

    def test_replica_latency_is_serial_not_interval(self):
        config, _, cluster = build(devices=2, mode=MODE_REPLICA)
        dense, sparse = random_batch(config, seed=8)
        _, timing = cluster.infer_batch(dense, sparse)
        # Latency follows the device's serial accounting (bottom MLP
        # overlaps embedding, top MLP after both, I/O on the edges)...
        expected = (
            max(timing.emb_ns, timing.bot_ns) + timing.top_ns + timing.io_ns
        )
        assert timing.latency_ns == pytest.approx(expected)
        # ...while the throughput interval stays the max-stage term.
        assert timing.interval_ns == pytest.approx(
            max(timing.emb_ns, timing.bot_ns, timing.top_ns, timing.io_ns, 1.0)
        )


class TestHeterogeneousTables:
    def build_hetero(self, mode=MODE_REPLICA, devices=2):
        tables = EmbeddingTableSet(
            [
                EmbeddingTable("large", 512, 16, seed=1),
                EmbeddingTable("tiny", 4, 16, seed=2),
            ]
        )
        bottom = MLP.from_widths(8, [16], seed=3)
        top = MLP.from_widths(2 * 16 + 16, [8, 1], seed=4)
        model = DLRM("hetero", tables, bottom, top)
        return RMSSDCluster(
            model, lookups_per_table=2, num_devices=devices, mode=mode
        )

    def test_throughput_qps_draws_per_table_indices(self):
        """Regression: random requests must respect each table's own
        row count.  Drawing every table's indices from tables[0].rows
        (512) sent out-of-range indices to the 4-row table."""
        cluster = self.build_hetero()
        qps = cluster.throughput_qps(nbatch=2, seed=0)
        assert qps > 0

    def test_throughput_qps_sharded_heterogeneous(self):
        cluster = self.build_hetero(mode=MODE_TABLE_SHARD, devices=2)
        assert cluster.throughput_qps(nbatch=1, seed=1) > 0


class TestValidation:
    def test_too_many_devices_rejected(self):
        with pytest.raises(ValueError):
            build(devices=9)  # RMC1 has 8 tables

    def test_unknown_mode_rejected(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=ROWS)
        with pytest.raises(ValueError):
            RMSSDCluster(model, 4, num_devices=2, mode="rings")

    def test_zero_devices_rejected(self):
        config = get_config("rmc1")
        model = build_model(config, rows_per_table=ROWS)
        with pytest.raises(ValueError):
            RMSSDCluster(model, 4, num_devices=0)

    def test_empty_batch_rejected(self):
        _, _, cluster = build(devices=2)
        with pytest.raises(ValueError):
            cluster.infer_batch(None, [])
