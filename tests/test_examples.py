"""The example scripts stay runnable.

Every example must at least import and define ``main``; the fast ones
are executed end to end so deliverable breakage surfaces in CI rather
than at demo time.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
#: Scripts cheap enough to execute inside the unit suite.
FAST_EXAMPLES = ("quickstart.py", "kernel_search_demo.py")


def test_examples_directory_populated():
    names = [p.name for p in ALL_EXAMPLES]
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_verifies_numerics():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert "match the host reference" in result.stdout
