"""Differential tests: the vectorized fast path vs the DES, exactly.

The fast path (:mod:`repro.ssd.fastpath` plus the batched lookup
engine) promises *bitwise* equivalence with the discrete-event
reference: identical elapsed times, identical pooled outputs, identical
I/O statistics, and identical resource bookkeeping carried into the
next batch.  These tests hold it to that promise over a grid of
geometries, pooling modes and index distributions, plus
property-based exploration with hypothesis.

The ``smoke``-named subset is run by ``tools/check.sh`` under
``RMSSD_SANITIZE=1``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from pytest import approx

from repro.core.lookup_engine import EmbeddingLookupEngine
from repro.embedding.layout import EmbeddingLayout
from repro.embedding.table import EmbeddingTableSet
from repro.sim import Simulator
from repro.ssd import fastpath
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.flash import FlashArray
from repro.ssd.geometry import SSDGeometry

NUM_TABLES = 3
ROWS = 96
DIM = 16

#: Four device shapes: balanced, channel-heavy, die-heavy, and the
#: degenerate single-channel single-die device (maximal queueing).
GEOMETRY_SPECS = {
    "square": dict(
        channels=4, dies_per_channel=4, planes_per_die=2,
        blocks_per_plane=8, pages_per_block=8,
    ),
    "wide": dict(
        channels=8, dies_per_channel=2, planes_per_die=1,
        blocks_per_plane=8, pages_per_block=8,
    ),
    "deep": dict(
        channels=2, dies_per_channel=8, planes_per_die=1,
        blocks_per_plane=8, pages_per_block=8,
    ),
    "single": dict(
        channels=1, dies_per_channel=1, planes_per_die=1,
        blocks_per_plane=16, pages_per_block=16,
    ),
}
GEOMETRY_NAMES = sorted(GEOMETRY_SPECS)
POOLING_MODES = ["sum", "mean"]
DISTRIBUTIONS = ["uniform", "skewed"]


def build_engine(geometry_name, pooling="sum", max_extent_pages=None, dim=DIM,
                 vcache=None):
    geo = SSDGeometry(**GEOMETRY_SPECS[geometry_name])
    device = BlockDevice(
        SSDController(Simulator(), geo, vcache=vcache), max_extent_pages
    )
    tables = EmbeddingTableSet.uniform(NUM_TABLES, ROWS, dim, seed=5)
    layout = EmbeddingLayout(device, tables)
    layout.create_all()
    return EmbeddingLookupEngine(device.controller, layout, pooling=pooling)


def make_batch(rng, samples, max_len, dist):
    high = 8 if dist == "skewed" else ROWS
    return [
        [
            [int(x) for x in rng.integers(0, high, size=rng.integers(0, max_len + 1))]
            for _ in range(NUM_TABLES)
        ]
        for _ in range(samples)
    ]


def assert_equivalent(des_engine, fast_engine, des, fast):
    """Full-state equivalence after running the same batch both ways."""
    assert des.path == "des"
    assert fast.vectors_read == des.vectors_read
    assert fast.pooled.shape == des.pooled.shape
    assert fast.pooled.dtype == des.pooled.dtype
    assert fast.pooled.tobytes() == des.pooled.tobytes()
    assert fast.elapsed_ns == approx(des.elapsed_ns, rel=0, abs=0)
    des_sim, fast_sim = des_engine.controller.sim, fast_engine.controller.sim
    assert fast_sim.now == approx(des_sim.now, rel=0, abs=0)
    assert fast_engine.controller.stats.as_dict() == (
        des_engine.controller.stats.as_dict()
    )
    # Server bookkeeping must carry into the next batch identically.
    des_ftl = des_engine.controller._ftl_server
    fast_ftl = fast_engine.controller._ftl_server
    assert (fast_ftl._free_at, fast_ftl.busy_time, fast_ftl.jobs_served) == (
        des_ftl._free_at, des_ftl.busy_time, des_ftl.jobs_served
    )
    channels = zip(
        des_engine.controller.flash.channels,
        fast_engine.controller.flash.channels,
    )
    for des_channel, fast_channel in channels:
        assert (
            fast_channel.bus._free_at,
            fast_channel.bus.busy_time,
            fast_channel.bus.jobs_served,
        ) == (
            des_channel.bus._free_at,
            des_channel.bus.busy_time,
            des_channel.bus.jobs_served,
        )


def run_pair(batches, geometry_name, pooling):
    des_engine = build_engine(geometry_name, pooling)
    fast_engine = build_engine(geometry_name, pooling)
    for batch in batches:
        des = des_engine.lookup_batch(batch, fast=False)
        fast = fast_engine.lookup_batch(batch, fast=True)
        assert fast.path == "fast"
        assert_equivalent(des_engine, fast_engine, des, fast)


# ----------------------------------------------------------------------
# Fixed-seed grid: every geometry x pooling mode x distribution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dist", DISTRIBUTIONS)
@pytest.mark.parametrize("pooling", POOLING_MODES)
@pytest.mark.parametrize("geometry", GEOMETRY_NAMES)
def test_grid_equivalence(geometry, pooling, dist):
    seed = (
        GEOMETRY_NAMES.index(geometry) * 4
        + POOLING_MODES.index(pooling) * 2
        + DISTRIBUTIONS.index(dist)
    )
    rng = np.random.default_rng(seed)
    batches = [make_batch(rng, samples=3, max_len=6, dist=dist) for _ in range(2)]
    run_pair(batches, geometry, pooling)


def test_smoke_equivalence_sum():
    rng = np.random.default_rng(42)
    run_pair([make_batch(rng, 2, 4, "uniform")], "square", "sum")


def test_smoke_equivalence_mean_skewed():
    rng = np.random.default_rng(43)
    run_pair([make_batch(rng, 2, 4, "skewed")], "deep", "mean")


def test_smoke_fragmented_layout():
    des_engine = build_engine("wide", "sum", max_extent_pages=1)
    fast_engine = build_engine("wide", "sum", max_extent_pages=1)
    batch = [[[0, 95, 7, 7], [50], list(range(10))]]
    des = des_engine.lookup_batch(batch, fast=False)
    fast = fast_engine.lookup_batch(batch, fast=True)
    assert fast.path == "fast"
    assert_equivalent(des_engine, fast_engine, des, fast)


@pytest.mark.parametrize("dim", [1, 8, 64])
def test_ev_size_variation_equivalent(dim):
    """Different EV sizes change transfer times and page packing; the
    replay and gather must stay exact for all of them."""
    rng = np.random.default_rng(dim)
    batch = make_batch(rng, samples=2, max_len=5, dist="uniform")
    des_engine = build_engine("square", dim=dim)
    fast_engine = build_engine("square", dim=dim)
    des = des_engine.lookup_batch(batch, fast=False)
    fast = fast_engine.lookup_batch(batch, fast=True)
    assert fast.path == "fast"
    assert_equivalent(des_engine, fast_engine, des, fast)


def test_multi_batch_state_carryover():
    """Three consecutive batches: bookkeeping from batch N must place
    batch N+1 identically on both paths."""
    rng = np.random.default_rng(9)
    batches = [make_batch(rng, 2, 5, dist) for dist in ("uniform", "skewed", "uniform")]
    run_pair(batches, "square", "sum")


def test_smoke_equivalence_with_vcache():
    """The contract extends to the controller-DRAM vector cache: both
    paths probe in the same issue order, so hit sets, elapsed times,
    statistics and server bookkeeping stay bitwise-equal (the full
    grid lives in ``tests/test_vcache_equivalence.py``)."""
    from repro.ssd.vcache import VectorCache

    rng = np.random.default_rng(44)
    batches = [make_batch(rng, 2, 5, "skewed") for _ in range(3)]
    des_engine = build_engine("square", vcache=VectorCache(16))
    fast_engine = build_engine("square", vcache=VectorCache(16))
    for batch in batches:
        des = des_engine.lookup_batch(batch, fast=False)
        fast = fast_engine.lookup_batch(batch, fast=True)
        assert fast.path == "fast"
        assert fast.vcache_hits == des.vcache_hits
        # The vcache contract is exact bitwise equality.
        assert fast.vcache_ns == des.vcache_ns  # lint: ok[R2]
        assert_equivalent(des_engine, fast_engine, des, fast)
    assert des_engine.controller.vcache.hits > 0
    assert (
        fast_engine.controller.vcache.hits == des_engine.controller.vcache.hits
    )


def test_all_empty_lookups_equivalent():
    """Zero vectors read: the fast path still matches the DES."""
    batch = [[[], [], []], [[], [], []]]
    des_engine = build_engine("square")
    fast_engine = build_engine("square")
    des = des_engine.lookup_batch(batch, fast=False)
    fast = fast_engine.lookup_batch(batch, fast=True)
    assert fast.path == "fast"
    assert fast.vectors_read == 0
    assert_equivalent(des_engine, fast_engine, des, fast)


# ----------------------------------------------------------------------
# Property-based exploration (fixed derandomized seeds)
# ----------------------------------------------------------------------
def batch_strategy(index_strategy):
    sample = st.lists(
        st.lists(index_strategy, min_size=0, max_size=6),
        min_size=NUM_TABLES,
        max_size=NUM_TABLES,
    )
    return st.lists(sample, min_size=1, max_size=3)


@given(
    batch=batch_strategy(st.integers(0, ROWS - 1)),
    geometry=st.sampled_from(GEOMETRY_NAMES),
    pooling=st.sampled_from(POOLING_MODES),
)
@settings(deadline=None, max_examples=25, derandomize=True)
def test_property_uniform_indices(batch, geometry, pooling):
    run_pair([batch], geometry, pooling)


@given(
    batch=batch_strategy(st.integers(0, 3)),
    geometry=st.sampled_from(GEOMETRY_NAMES),
    pooling=st.sampled_from(POOLING_MODES),
)
@settings(deadline=None, max_examples=25, derandomize=True)
def test_property_hot_indices(batch, geometry, pooling):
    """All lookups hammer the same few rows (worst-case contention)."""
    run_pair([batch], geometry, pooling)


# ----------------------------------------------------------------------
# Routing: when the fast path must NOT be taken
# ----------------------------------------------------------------------
def test_smoke_background_block_io_forces_des():
    engine = build_engine("square")
    controller = engine.controller
    sim = controller.sim
    batch = [[[0, 1], [2], [3]]]
    controller.sim.process(controller.read_block_proc(0))
    assert sim.peek() is not None
    first = engine.lookup_batch(batch, fast=True)
    assert first.path == "des"
    # The DES run drained the queue; the next batch may go fast.
    assert sim.peek() is None
    second = engine.lookup_batch(batch, fast=True)
    assert second.path == "fast"


def test_keep_history_forces_des():
    engine = build_engine("square")
    engine.controller.fmc.keep_history = True
    result = engine.lookup_batch([[[0], [1], [2]]], fast=True)
    assert result.path == "des"


def test_env_flag_gates_default(monkeypatch):
    batch = [[[0], [1], [2]]]
    monkeypatch.setenv(fastpath.ENV_FLAG, "0")
    assert not fastpath.enabled()
    engine = build_engine("square")
    assert engine.lookup_batch(batch).path == "des"
    monkeypatch.setenv(fastpath.ENV_FLAG, "off")
    assert not fastpath.enabled()
    monkeypatch.setenv(fastpath.ENV_FLAG, "1")
    assert fastpath.enabled()
    assert engine.lookup_batch(batch).path == "fast"
    monkeypatch.delenv(fastpath.ENV_FLAG)
    assert fastpath.enabled()


def test_explicit_fast_argument_overrides_env(monkeypatch):
    monkeypatch.setenv(fastpath.ENV_FLAG, "0")
    engine = build_engine("square")
    result = engine.lookup_batch([[[0], [1], [2]]], fast=True)
    assert result.path == "fast"


# ----------------------------------------------------------------------
# FlashArray.run_reads: both request shapes
# ----------------------------------------------------------------------
def make_flash(geometry_name="square", written_pages=40):
    geo = SSDGeometry(**GEOMETRY_SPECS[geometry_name])
    flash = FlashArray(Simulator(), geo)
    rng = np.random.default_rng(7)
    for page in range(min(written_pages, geo.total_pages)):
        flash.write_page(page, rng.bytes(geo.page_size))
    return flash


def assert_flash_equivalent(des_flash, fast_flash, t_des, t_fast):
    assert t_fast == approx(t_des, rel=0, abs=0)
    assert fast_flash.sim.now == approx(des_flash.sim.now, rel=0, abs=0)
    assert fast_flash.stats.as_dict() == des_flash.stats.as_dict()
    for des_channel, fast_channel in zip(des_flash.channels, fast_flash.channels):
        assert (
            fast_channel.bus._free_at,
            fast_channel.bus.busy_time,
            fast_channel.bus.jobs_served,
        ) == (
            des_channel.bus._free_at,
            des_channel.bus.busy_time,
            des_channel.bus.jobs_served,
        )


@pytest.mark.parametrize("geometry", GEOMETRY_NAMES)
def test_run_reads_vector_equivalence(geometry):
    des_flash = make_flash(geometry)
    fast_flash = make_flash(geometry)
    pages = min(40, des_flash.geometry.total_pages)
    rng = np.random.default_rng(3)
    requests = [
        (int(rng.integers(0, pages)), int(rng.integers(0, 63)) * 64, 64)
        for _ in range(50)
    ]
    t_des = des_flash.run_reads(requests, vector=True, fast=False)
    t_fast = fast_flash.run_reads(list(requests), vector=True, fast=True)
    assert_flash_equivalent(des_flash, fast_flash, t_des, t_fast)


def test_smoke_run_reads_page_equivalence():
    des_flash = make_flash()
    fast_flash = make_flash()
    rng = np.random.default_rng(4)
    requests = [int(x) for x in rng.integers(0, 40, size=30)]
    t_des = des_flash.run_reads(requests, vector=False, fast=False)
    t_fast = fast_flash.run_reads(list(requests), vector=False, fast=True)
    assert_flash_equivalent(des_flash, fast_flash, t_des, t_fast)


def test_run_reads_consecutive_batches_equivalent():
    des_flash = make_flash()
    fast_flash = make_flash()
    rng = np.random.default_rng(5)
    for _ in range(3):
        requests = [
            (int(rng.integers(0, 40)), int(rng.integers(0, 31)) * 128, 128)
            for _ in range(20)
        ]
        t_des = des_flash.run_reads(requests, vector=True, fast=False)
        t_fast = fast_flash.run_reads(list(requests), vector=True, fast=True)
        assert_flash_equivalent(des_flash, fast_flash, t_des, t_fast)


def test_run_reads_fast_validates_bounds():
    flash = make_flash()
    with pytest.raises(ValueError):
        flash.run_reads([(0, 4090, 64)], vector=True, fast=True)
    with pytest.raises(ValueError):
        flash.run_reads([(0, -4, 64)], vector=True, fast=True)
