"""Tests for the Embedding Lookup Engine."""

import numpy as np
import pytest

from repro.core.lookup_engine import (
    EmbeddingLookupEngine,
    effective_vector_bandwidth,
    flash_read_cycles,
)
from repro.embedding.layout import EmbeddingLayout
from repro.embedding.pooling import sls_batch
from repro.embedding.table import EmbeddingTableSet
from repro.sim import Simulator
from repro.ssd.blockdev import BlockDevice
from repro.ssd.controller import SSDController
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import SSDTimingModel


def make_engine(num_tables=4, rows=64, dim=32, max_extent_pages=None):
    geo = SSDGeometry(
        channels=4,
        dies_per_channel=4,
        planes_per_die=2,
        blocks_per_plane=32,
        pages_per_block=32,
    )
    device = BlockDevice(SSDController(Simulator(), geo), max_extent_pages)
    tables = EmbeddingTableSet.uniform(num_tables, rows, dim, seed=5)
    layout = EmbeddingLayout(device, tables)
    layout.create_all()
    return EmbeddingLookupEngine(device.controller, layout), tables


class TestNumerics:
    def test_matches_host_sls_exactly(self):
        engine, tables = make_engine()
        batch = [
            [[0, 1, 2], [5], [10, 20], [63, 63]],
            [[7], [8, 9], [1, 1, 1], [0]],
        ]
        result = engine.lookup_batch(batch)
        expected = sls_batch(tables, batch)
        np.testing.assert_array_equal(result.pooled, expected)

    def test_fragmented_layout_still_exact(self):
        engine, tables = make_engine(max_extent_pages=1)
        batch = [[[i, 63 - i] for i in range(4)]]
        result = engine.lookup_batch(batch)
        np.testing.assert_array_equal(result.pooled, sls_batch(tables, batch))

    def test_repeated_index_accumulates(self):
        engine, tables = make_engine()
        result = engine.lookup_batch([[[3, 3], [0], [0], [0]]])
        expected = (tables[0].row(3) * 2).astype(np.float32)
        np.testing.assert_array_equal(result.pooled[0, :32], expected)

    def test_wrong_table_count_rejected(self):
        engine, _ = make_engine(num_tables=2)
        with pytest.raises(ValueError):
            engine.lookup_batch([[[0]]])

    def test_useful_bytes_accounted(self):
        engine, tables = make_engine()
        engine.lookup_batch([[[0, 1], [2], [3], [4]]])
        assert engine.controller.stats.useful_bytes == 5 * tables.ev_size


class TestTiming:
    def test_elapsed_positive_and_bounded(self):
        engine, _ = make_engine()
        result = engine.lookup_batch([[[0], [1], [2], [3]]])
        timing = engine.controller.timing
        assert result.elapsed_ns >= timing.vector_read_ns(128)
        # 4 vectors across 4 channels cannot cost more than serial.
        assert result.elapsed_ns < 4 * (
            timing.vector_read_ns(128) + timing.request_overhead_ns
        ) + 4 * timing.cycle_ns

    def test_more_lookups_take_longer(self):
        engine_small, _ = make_engine()
        t_small = engine_small.lookup_batch([[[0]] * 4]).elapsed_ns

        engine_big, _ = make_engine()
        t_big = engine_big.lookup_batch([[list(range(32))] * 4]).elapsed_ns
        assert t_big > t_small

    def test_analytic_tracks_des_within_factor_two(self):
        engine, _ = make_engine(rows=64)
        rng = np.random.default_rng(0)
        batch = [
            [list(rng.integers(0, 64, size=20)) for _ in range(4)]
            for _ in range(4)
        ]
        result = engine.lookup_batch(batch)
        analytic = engine.controller.timing.cycles_to_ns(
            engine.analytic_cycles(result.vectors_read)
        )
        assert analytic == pytest.approx(result.elapsed_ns, rel=1.0)

    def test_vectors_read_counted(self):
        engine, _ = make_engine()
        result = engine.lookup_batch([[[0, 1, 2], [3], [4], [5]]])
        assert result.vectors_read == 6
        assert engine.controller.stats.flash_vector_reads == 6


class TestBandwidthModel:
    def test_bev_positive_and_bus_capped(self):
        geo = SSDGeometry()
        timing = SSDTimingModel()
        bev = effective_vector_bandwidth(geo, timing, 128)
        die_bound = geo.channels * geo.dies_per_channel / timing.vector_read_cycles(128)
        assert 0 < bev <= die_bound

    def test_bev_decreases_with_vector_size(self):
        geo, timing = SSDGeometry(), SSDTimingModel()
        assert effective_vector_bandwidth(geo, timing, 256) < (
            effective_vector_bandwidth(geo, timing, 64)
        )

    def test_flash_read_cycles_scales_linearly(self):
        geo, timing = SSDGeometry(), SSDTimingModel()
        one = flash_read_cycles(100, geo, timing, 128)
        ten = flash_read_cycles(1000, geo, timing, 128)
        assert ten == pytest.approx(10 * one, rel=0.01)

    def test_zero_vectors_is_free(self):
        assert flash_read_cycles(0, SSDGeometry(), SSDTimingModel(), 128) == 0

    def test_rmc1_embedding_time_magnitude(self):
        # 640 x 128 B vectors over 4 ch x 2 dies: ~227 K cycles ~ 1.1 ms,
        # the embedding floor behind Fig. 12(a)'s ~1 K QPS ceiling.
        cycles = flash_read_cycles(640, SSDGeometry(), SSDTimingModel(), 128)
        assert 180_000 < cycles < 280_000
