"""Tier-1 test configuration.

Sanitizer mode (:mod:`repro.sim.sanitizer`) is on by default for the
whole suite: every ``Simulator()`` constructed without an explicit
``sanitize=`` argument runs with invariant checks enabled.  The
sanitizer is observation-only (pinned by
``tests/test_sanitizer_property.py``), so this changes no numbers —
it just turns silent invariant violations into hard failures.

Opt out for a single run with ``RMSSD_SANITIZE=0 pytest ...``.
"""

import os

os.environ.setdefault("RMSSD_SANITIZE", "1")
