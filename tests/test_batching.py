"""Tests for the deadline-aware dynamic batcher."""

import numpy as np
import pytest

from repro.host.batching import DynamicBatcher


def constant_stage_fn(emb=100.0, bot=0.0, top=20.0, per_sample_emb=0.0):
    def fn(nbatch):
        return (emb + per_sample_emb * nbatch, bot, top)

    return fn


class TestDispatchPolicy:
    def test_full_batch_dispatches_immediately(self):
        batcher = DynamicBatcher(constant_stage_fn(), max_batch=4, max_wait_ns=1e9)
        # 4 queries at t=0: batch forms without waiting for the deadline.
        result = batcher.run([0, 0, 0, 0])
        assert result.batch_sizes == [4]
        assert result.makespan_ns == pytest.approx(120)  # emb + top

    def test_deadline_flushes_partial_batch(self):
        batcher = DynamicBatcher(constant_stage_fn(), max_batch=8, max_wait_ns=50)
        result = batcher.run([0, 10])
        assert result.batch_sizes == [2]
        # Dispatch at deadline (t=50), finish at 50 + 120.
        assert result.makespan_ns == pytest.approx(170)

    def test_zero_wait_serves_singletons(self):
        batcher = DynamicBatcher(constant_stage_fn(), max_batch=8, max_wait_ns=0)
        result = batcher.run([0, 300, 600])
        assert result.batch_sizes == [1, 1, 1]

    def test_spread_arrivals_split_batches(self):
        batcher = DynamicBatcher(constant_stage_fn(), max_batch=4, max_wait_ns=30)
        result = batcher.run([0, 10, 1000, 1010])
        assert result.batch_sizes == [2, 2]

    def test_latencies_include_queueing(self):
        batcher = DynamicBatcher(constant_stage_fn(), max_batch=2, max_wait_ns=1e9)
        result = batcher.run([0, 40])
        # Query 0 waits for query 1 (40 ns) then 120 ns of service.
        assert result.query_latencies_ns[0] == pytest.approx(160)
        assert result.query_latencies_ns[1] == pytest.approx(120)

    def test_unsorted_arrivals_rejected(self):
        batcher = DynamicBatcher(constant_stage_fn(), max_batch=2, max_wait_ns=10)
        with pytest.raises(ValueError):
            batcher.run([10, 0])

    def test_empty_rejected(self):
        batcher = DynamicBatcher(constant_stage_fn(), max_batch=2, max_wait_ns=10)
        with pytest.raises(ValueError):
            batcher.run([])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DynamicBatcher(constant_stage_fn(), max_batch=0, max_wait_ns=1)
        with pytest.raises(ValueError):
            DynamicBatcher(constant_stage_fn(), max_batch=1, max_wait_ns=-1)


class TestTradeoff:
    def test_batching_raises_throughput_on_amortized_service(self):
        # Embedding cost dominated by a fixed term: batching amortizes.
        rng = np.random.default_rng(0)
        arrivals = np.cumsum(rng.exponential(30.0, size=400)).tolist()
        fn = constant_stage_fn(emb=100.0, per_sample_emb=2.0)
        singles = DynamicBatcher(fn, max_batch=1, max_wait_ns=0).run(arrivals)
        batched = DynamicBatcher(fn, max_batch=8, max_wait_ns=200).run(arrivals)
        assert batched.makespan_ns < singles.makespan_ns
        assert batched.mean_batch_size > 2

    def test_batching_adds_latency_when_underloaded(self):
        # Sparse arrivals: waiting for the deadline only hurts.
        arrivals = [i * 10_000.0 for i in range(20)]
        fn = constant_stage_fn()
        eager = DynamicBatcher(fn, max_batch=8, max_wait_ns=0).run(arrivals)
        patient = DynamicBatcher(fn, max_batch=8, max_wait_ns=5_000).run(arrivals)
        assert patient.latency_percentile_ns(50) > eager.latency_percentile_ns(50)

    def test_from_engine(self):
        from repro.core.device import RMSSD
        from repro.models import build_model, get_config

        config = get_config("rmc1")
        model = build_model(config, rows_per_table=32)
        device = RMSSD(model, lookups_per_table=4, use_des=False)
        batcher = DynamicBatcher.from_engine(
            device.mlp_engine, max_batch=4, max_wait_ns=1e6
        )
        result = batcher.run([0.0, 100.0, 200.0, 300.0])
        assert result.queries == 4
        assert result.qps > 0
