"""Tier-1 gate: the whole tree passes the domain lint pass.

Runs the same pass as ``python -m tools.lint src tests benchmarks``;
any new violation fails the suite, so the invariants in
``docs/correctness.md`` cannot silently rot.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import ALL_RULES, PROJECT_RULES, lint_paths  # noqa: E402
from tools.lint.baseline import (  # noqa: E402
    load_baseline,
    partition,
    write_baseline,
)
from tools.lint.cli import main  # noqa: E402
from tools.lint.engine import Violation  # noqa: E402

LINTED = [str(REPO_ROOT / d) for d in ("src", "tests", "benchmarks")]


def test_tree_is_lint_clean():
    violations = lint_paths(LINTED)
    assert not violations, "lint violations:\n" + "\n".join(
        v.render() for v in violations
    )


def test_cli_exits_zero_on_clean_tree(capsys):
    assert main(LINTED) == 0
    captured = capsys.readouterr()
    assert "0 violations" in captured.err


def test_cli_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bench_bad.py"
    bad.write_text("print('hello')\n")
    assert main([str(bad)]) == 1
    captured = capsys.readouterr()
    assert "R6" in captured.out


def test_cli_rejects_empty_path_set(tmp_path, capsys):
    assert main([str(tmp_path)]) == 2


def test_cli_lists_all_six_rules(capsys):
    assert main(["--list-rules"]) == 0
    captured = capsys.readouterr()
    for rule in ALL_RULES:
        assert rule.id in captured.out
    assert len(ALL_RULES) >= 6


def test_cli_lists_project_rules_with_summaries(capsys):
    assert main(["--list-rules"]) == 0
    captured = capsys.readouterr()
    for rule in PROJECT_RULES:
        assert rule.id in captured.out
        assert rule.summary
        assert rule.summary in captured.out
    assert len(PROJECT_RULES) == 4


def test_cli_rejects_bad_path_naming_it(capsys):
    missing = str(REPO_ROOT / "no_such_dir" / "nope.py")
    assert main([missing, str(REPO_ROOT / "src")]) == 2
    captured = capsys.readouterr()
    assert missing in captured.err


def test_cli_rejects_non_python_file_argument(tmp_path, capsys):
    stray = tmp_path / "notes.txt"
    stray.write_text("not python\n")
    assert main([str(stray)]) == 2
    captured = capsys.readouterr()
    assert str(stray) in captured.err


def test_tools_package_itself_compiles_clean():
    violations = lint_paths([str(REPO_ROOT / "tools")])
    assert not violations, "\n".join(v.render() for v in violations)


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------
def _bench_with_prints(tmp_path, count):
    bad = tmp_path / "bench_legacy.py"
    bad.write_text("".join(f"print({i})\n" for i in range(count)))
    return bad


def test_baseline_tolerates_recorded_violations(tmp_path, capsys):
    bad = _bench_with_prints(tmp_path, 1)
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--write-baseline", str(baseline)]) == 0
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    captured = capsys.readouterr()
    assert "tolerated" in captured.err


def test_baseline_fails_on_new_violation(tmp_path, capsys):
    bad = _bench_with_prints(tmp_path, 1)
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--write-baseline", str(baseline)]) == 0
    bad.write_text(bad.read_text() + "print('drift')\n")
    assert main([str(bad), "--baseline", str(baseline)]) == 1
    captured = capsys.readouterr()
    assert "R6" in captured.out


def test_baseline_reports_stale_entries(tmp_path, capsys):
    bad = _bench_with_prints(tmp_path, 1)
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--write-baseline", str(baseline)]) == 0
    bad.write_text("x = 1\n")
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    captured = capsys.readouterr()
    assert "stale" in captured.err


def test_baseline_is_a_multiset(tmp_path):
    # Two identical violations need two entries: one recorded print
    # does not blanket-tolerate every future print with the same text.
    bad = _bench_with_prints(tmp_path, 2)
    entries = [
        Violation("R6", str(bad), 1, "msg"),
        Violation("R6", str(bad), 2, "msg"),
    ]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(str(baseline_path), entries[:1])
    new, tolerated, stale = partition(
        entries, load_baseline(str(baseline_path))
    )
    assert len(tolerated) == 1 and len(new) == 1 and not stale


def test_bad_baseline_file_exits_two(tmp_path, capsys):
    bad = _bench_with_prints(tmp_path, 1)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("[]\n")
    assert main([str(bad), "--baseline", str(baseline)]) == 2
    captured = capsys.readouterr()
    assert "bad baseline" in captured.err


def test_committed_baseline_is_clean():
    # The repo carries no tolerated debt: the committed ratchet file is
    # empty, so `--baseline` is exactly as strict as the plain run.
    committed = load_baseline(
        str(REPO_ROOT / "tools" / "lint" / "baseline.json")
    )
    assert sum(committed.values()) == 0


# ----------------------------------------------------------------------
# Injected-drift canary: the whole-program analysis is live
# ----------------------------------------------------------------------
def test_r9_canary_fires_on_injected_drift(capsys):
    from tools.lint.canary import run

    assert run(str(REPO_ROOT / "src")) == 0
    captured = capsys.readouterr()
    assert "R9 fired" in captured.out
