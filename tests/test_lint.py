"""Tier-1 gate: the whole tree passes the domain lint pass.

Runs the same pass as ``python -m tools.lint src tests benchmarks``;
any new violation fails the suite, so the invariants in
``docs/correctness.md`` cannot silently rot.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import ALL_RULES, lint_paths  # noqa: E402
from tools.lint.cli import main  # noqa: E402

LINTED = [str(REPO_ROOT / d) for d in ("src", "tests", "benchmarks")]


def test_tree_is_lint_clean():
    violations = lint_paths(LINTED)
    assert not violations, "lint violations:\n" + "\n".join(
        v.render() for v in violations
    )


def test_cli_exits_zero_on_clean_tree(capsys):
    assert main(LINTED) == 0
    captured = capsys.readouterr()
    assert "0 violations" in captured.err


def test_cli_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bench_bad.py"
    bad.write_text("print('hello')\n")
    assert main([str(bad)]) == 1
    captured = capsys.readouterr()
    assert "R6" in captured.out


def test_cli_rejects_empty_path_set(tmp_path, capsys):
    assert main([str(tmp_path)]) == 2


def test_cli_lists_all_six_rules(capsys):
    assert main(["--list-rules"]) == 0
    captured = capsys.readouterr()
    for rule in ALL_RULES:
        assert rule.id in captured.out
    assert len(ALL_RULES) >= 6


def test_tools_package_itself_compiles_clean():
    violations = lint_paths([str(REPO_ROOT / "tools")])
    assert not violations, "\n".join(v.render() for v in violations)
