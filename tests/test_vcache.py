"""Unit tests for the controller-DRAM hot-vector cache.

Covers :mod:`repro.ssd.vcache` (policies, eviction, warming, the DRAM
fetch cost), the new I/O-statistics counters, and the sanitizer's
``vcache-hit-bound`` invariant.  The end-to-end bitwise-equivalence
contract lives in ``tests/test_vcache_equivalence.py``.
"""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.sim.sanitizer import Sanitizer, SanitizerError
from repro.ssd.stats import IOStatistics
from repro.ssd.vcache import (
    DRAM_BYTES_PER_CYCLE,
    POLICIES,
    VectorCache,
    fetch_cycles,
)


def vec(seed: float) -> np.ndarray:
    return np.full(4, np.float32(seed), dtype=np.float32)


def probe(cache: VectorCache, key) -> bool:
    """Access ``key`` with a deterministic loader; True on a hit."""
    return cache.access(key, lambda: vec(hash(key) % 97)) is not None


class TestConstruction:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            VectorCache(4, policy="mru")

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            VectorCache(-1)

    def test_rejects_bad_admit_after(self):
        with pytest.raises(ValueError, match="admit_after"):
            VectorCache(4, policy="freq", admit_after=0)

    def test_capacity_bytes_tracks_ev_size(self):
        cache = VectorCache(8, ev_size=64)
        assert cache.capacity_bytes == 512

    def test_all_policies_constructible(self):
        for policy in POLICIES:
            assert VectorCache(2, policy=policy).policy == policy


class TestLRUPolicy:
    def test_miss_then_hit(self):
        cache = VectorCache(4)
        assert not probe(cache, (0, 1))
        hit = cache.access((0, 1), lambda: vec(9))
        assert hit is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_hit_returns_loaded_bytes(self):
        cache = VectorCache(4)
        cache.access((3, 7), lambda: vec(1.5))
        value = cache.access((3, 7), lambda: vec(999))
        assert value.tobytes() == vec(1.5).tobytes()

    def test_evicts_least_recently_used(self):
        cache = VectorCache(2)
        probe(cache, "a")
        probe(cache, "b")
        probe(cache, "a")  # refresh a; b is now LRU
        probe(cache, "c")  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_zero_capacity_never_fills(self):
        cache = VectorCache(0)
        for _ in range(3):
            assert not probe(cache, "k")
        assert len(cache) == 0 and cache.fills == 0
        assert cache.misses == 3


class TestFreqPolicy:
    def test_doorkeeper_delays_admission(self):
        cache = VectorCache(4, policy="freq", admit_after=2)
        assert not probe(cache, "x")  # miss 1: seen but not admitted
        assert len(cache) == 0
        assert not probe(cache, "x")  # miss 2: admitted
        assert len(cache) == 1
        assert probe(cache, "x")      # now a hit

    def test_one_shot_keys_never_pollute(self):
        cache = VectorCache(2, policy="freq", admit_after=2)
        probe(cache, "hot")
        probe(cache, "hot")  # admitted
        for cold in range(50):
            probe(cache, ("cold", cold))  # each seen once: never admitted
        assert probe(cache, "hot")
        assert len(cache) == 1

    def test_admit_after_one_behaves_like_lru(self):
        freq = VectorCache(2, policy="freq", admit_after=1)
        lru = VectorCache(2, policy="lru")
        keys = ["a", "b", "a", "c", "b", "a", "c"]
        outcomes = [(probe(freq, k), probe(lru, k)) for k in keys]
        assert all(f == l for f, l in outcomes)


class TestStaticPolicy:
    def test_fills_until_capacity_then_freezes(self):
        cache = VectorCache(2, policy="static")
        probe(cache, "a")
        probe(cache, "b")
        assert not probe(cache, "c")  # full: c not admitted
        assert "c" not in cache
        assert probe(cache, "a") and probe(cache, "b")
        assert cache.evictions == 0

    def test_warm_pins_profiled_hot_set(self):
        cache = VectorCache(2, policy="static")
        resident = cache.warm([("h1", vec(1)), ("h2", vec(2)), ("h3", vec(3))])
        assert resident == 2
        assert probe(cache, "h1") and probe(cache, "h2")
        assert not probe(cache, "h3")

    def test_warm_refreshes_without_consuming_slots(self):
        cache = VectorCache(2)
        cache.warm([("a", vec(1)), ("a", vec(5)), ("b", vec(2))])
        assert len(cache) == 2
        assert cache.access("a", lambda: vec(0)).tobytes() == vec(5).tobytes()


class TestBookkeeping:
    def test_reset_stats_keeps_contents(self):
        cache = VectorCache(4)
        probe(cache, "a")
        probe(cache, "a")
        cache.reset_stats()
        assert (cache.hits, cache.misses, cache.lookups) == (0, 0, 0)
        assert "a" in cache

    def test_clear_drops_everything(self):
        cache = VectorCache(4, policy="freq")
        probe(cache, "a")
        cache.clear()
        assert len(cache) == 0 and cache.misses == 0
        # Doorkeeper state is gone too: admission restarts from zero.
        assert not probe(cache, "a")
        assert len(cache) == 0


class TestFetchCycles:
    def test_zero_and_negative_vectors_cost_nothing(self):
        assert fetch_cycles(0, 64) == 0.0
        assert fetch_cycles(-3, 64) == 0.0

    def test_linear_in_vectors_and_ev_size(self):
        one = fetch_cycles(1, 64)
        assert one == pytest.approx(64 / DRAM_BYTES_PER_CYCLE)
        assert fetch_cycles(10, 64) == pytest.approx(10 * one)
        assert fetch_cycles(1, 128) == pytest.approx(2 * one)

    def test_far_cheaper_than_flash_read(self):
        from repro.ssd.timing import SSDTimingModel

        timing = SSDTimingModel()
        assert fetch_cycles(1, 64) < 0.01 * timing.vector_read_cycles(64)


class TestIOStatistics:
    def test_record_vcache_accumulates(self):
        stats = IOStatistics()
        stats.record_vcache(3, 1)
        stats.record_vcache(1, 3)
        assert (stats.vcache_hits, stats.vcache_misses) == (4, 4)
        assert stats.vcache_hit_ratio == pytest.approx(0.5)

    def test_ratio_zero_without_probes(self):
        assert IOStatistics().vcache_hit_ratio == 0.0

    def test_counters_in_snapshots_and_dict(self):
        stats = IOStatistics()
        before = stats.snapshot()
        stats.record_vcache(2, 6)
        window = stats.diff(before)
        assert (window.vcache_hits, window.vcache_misses) == (2, 6)
        assert window.vcache_hit_ratio == pytest.approx(0.25)
        assert stats.as_dict()["vcache_hits"] == 2
        assert stats.as_dict()["vcache_hit_ratio"] == pytest.approx(0.25)

    def test_eviction_and_fill_counters_windowed(self):
        stats = IOStatistics()
        stats.record_vcache(0, 4, evictions=1, fills=4)
        before = stats.snapshot()
        stats.record_vcache(3, 1, evictions=0, fills=1)
        window = stats.diff(before)
        assert (window.vcache_evictions, window.vcache_fills) == (0, 1)
        assert (stats.vcache_evictions, stats.vcache_fills) == (1, 5)

    def test_window_around_cached_lookup(self):
        """snapshot()/diff() around a real lookup carries every vcache
        counter through the window — including evictions and fills."""
        from tests.test_fastpath_equivalence import build_engine

        engine = build_engine("square", vcache=VectorCache(16))
        stats = engine.controller.stats
        batch = [[[0, 1, 2], [3, 4], [5]]]
        engine.lookup_batch(batch, fast=False)  # cold: all misses fill
        before = stats.snapshot()
        result = engine.lookup_batch(batch, fast=False)  # warm: all hit
        window = stats.diff(before)
        assert result.vcache_hits == 6
        assert (window.vcache_hits, window.vcache_misses) == (6, 0)
        assert (window.vcache_evictions, window.vcache_fills) == (0, 0)
        assert window.vcache_hit_ratio == pytest.approx(1.0)
        # The cold batch's fills live in the cumulative counters (and
        # in the window *before* the snapshot), not in this window.
        assert stats.vcache_fills == 6
        assert before.vcache_fills == 6


class TestSanitizerInvariant:
    def test_valid_batches_pass(self):
        sanitizer = Sanitizer(Simulator())
        sanitizer.vcache_batch(0, 0)
        sanitizer.vcache_batch(3, 3)
        sanitizer.vcache_batch(1, 10)

    @pytest.mark.parametrize("hits,lookups", [(4, 3), (-1, 5), (0, -2)])
    def test_bad_counts_raise(self, hits, lookups):
        sanitizer = Sanitizer(Simulator())
        with pytest.raises(SanitizerError, match="vcache-hit-bound"):
            sanitizer.vcache_batch(hits, lookups)
