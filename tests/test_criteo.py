"""Tests for the synthetic Criteo-format dataset substrate."""

import numpy as np
import pytest

from repro.models import build_model, get_config
from repro.workloads.criteo import (
    NUM_DENSE,
    NUM_SPARSE,
    CriteoDataset,
    generate_criteo_file,
)
from repro.workloads.stats import TraceStatistics


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("criteo") / "train.tsv"
    generate_criteo_file(path, rows=600, vocab_size=50_000, seed=3)
    return CriteoDataset.load(path)


class TestGeneration:
    def test_file_shape(self, tmp_path):
        path = generate_criteo_file(tmp_path / "t.tsv", rows=10, seed=0)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 10
        for line in lines:
            fields = line.split("\t")
            assert len(fields) == 1 + NUM_DENSE + NUM_SPARSE
            assert fields[0] in ("0", "1")
            int(fields[NUM_DENSE], 10)  # dense columns are integers
            int(fields[-1], 16)  # sparse columns are hex

    def test_deterministic(self, tmp_path):
        a = generate_criteo_file(tmp_path / "a.tsv", rows=20, seed=5)
        b = generate_criteo_file(tmp_path / "b.tsv", rows=20, seed=5)
        assert a.read_text() == b.read_text()

    def test_invalid_rows(self, tmp_path):
        with pytest.raises(ValueError):
            generate_criteo_file(tmp_path / "x.tsv", rows=0)

    def test_label_rate_reasonable(self, dataset):
        rate = sum(s.label for s in dataset.samples) / len(dataset)
        assert 0.1 < rate < 0.45


class TestLoading:
    def test_load_counts(self, dataset):
        assert len(dataset) == 600

    def test_limit(self, tmp_path):
        path = generate_criteo_file(tmp_path / "t.tsv", rows=50, seed=1)
        assert len(CriteoDataset.load(path, limit=10)) == 10

    def test_dense_log_transform(self, dataset):
        for sample in dataset.samples[:20]:
            assert sample.dense.dtype == np.float32
            assert np.all(sample.dense >= 0)

    def test_malformed_rejected(self, tmp_path):
        bad = tmp_path / "bad.tsv"
        bad.write_text("1\t2\t3\n")
        with pytest.raises(ValueError):
            CriteoDataset.load(bad)

    def test_empty_rejected(self, tmp_path):
        empty = tmp_path / "empty.tsv"
        empty.write_text("")
        with pytest.raises(ValueError):
            CriteoDataset.load(empty)


class TestRequests:
    def test_single_lookup_requests(self, dataset):
        requests = dataset.to_requests(
            batch_size=4, num_tables=26, rows_per_table=1000
        )
        request = requests[0]
        assert request.batch_size == 4
        assert request.dense.shape == (4, NUM_DENSE)
        assert len(request.sparse[0]) == 26
        assert all(len(l) == 1 for l in request.sparse[0])
        assert all(
            0 <= i < 1000 for sample in request.sparse for l in sample for i in l
        )

    def test_multi_lookup_requests(self, dataset):
        requests = dataset.to_requests(
            batch_size=2, num_tables=8, rows_per_table=500, lookups_per_table=10
        )
        assert all(len(l) == 10 for l in requests[0].sparse[0])

    def test_dense_dim_padding(self, dataset):
        requests = dataset.to_requests(
            batch_size=1, num_tables=8, rows_per_table=100, dense_dim=128
        )
        assert requests[0].dense.shape == (1, 128)

    def test_too_small_dataset_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.to_requests(
                batch_size=1000, num_tables=8, rows_per_table=100,
                lookups_per_table=10,
            )

    def test_requests_drive_a_model(self, dataset):
        config = get_config("wnd")  # 26 tables, 1 lookup: Criteo-native
        model = build_model(config, rows_per_table=512, seed=0)
        requests = dataset.to_requests(
            batch_size=4,
            num_tables=config.num_tables,
            rows_per_table=512,
            dense_dim=config.dense_dim,
        )
        outputs = model.forward(requests[0].dense, requests[0].sparse)
        assert outputs.shape == (4, 1)
        assert np.all((outputs > 0) & (outputs < 1))


class TestLocality:
    def test_column_statistics_heavy_tailed(self, dataset):
        indices = dataset.column_indices(0, rows_per_table=50_000)
        stats = TraceStatistics.from_indices(indices)
        # Hot/cold mixture: hot head owns a meaningful share.
        hot_share = stats.top_k_share(max(1, stats.total_indices // 20))
        assert hot_share > 0.4

    def test_column_out_of_range(self, dataset):
        with pytest.raises(ValueError):
            dataset.column_indices(NUM_SPARSE, 100)
