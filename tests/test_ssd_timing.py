"""Tests for the Table II timing model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ssd.timing import SSDTimingModel


@pytest.fixture
def timing():
    return SSDTimingModel()


class TestTableIIConstants:
    """The paper's published constants must fall out of the formulas."""

    def test_cycle_is_5ns_at_200mhz(self, timing):
        assert timing.cycle_ns == pytest.approx(5.0)

    def test_cpage_is_4000_cycles(self, timing):
        assert timing.page_read_cycles == pytest.approx(4000)

    def test_flush_is_2800_cycles(self, timing):
        # 0.7 * 4000 (the 7:3 flush:transfer split).
        assert timing.flush_cycles == pytest.approx(2800)

    def test_transfer_is_1200_cycles(self, timing):
        assert timing.transfer_cycles == pytest.approx(1200)

    def test_cev_formula_matches_table_ii(self, timing):
        # Table II: CEV = 0.293 * EVsize + 2800 cycles.
        for ev_size in [64, 128, 256, 1024]:
            expected = 0.29296875 * ev_size + 2800
            assert timing.vector_read_cycles(ev_size) == pytest.approx(expected)

    def test_cev_128b_example(self, timing):
        # A dim-32 fp32 vector is 128 B: CEV ~ 2837.5 cycles ~ 14.2 us.
        assert timing.vector_read_cycles(128) == pytest.approx(2837.5)
        assert timing.vector_read_ns(128) == pytest.approx(14187.5)

    def test_page_read_is_20us(self, timing):
        assert timing.page_read_ns == pytest.approx(20000.0)


class TestVectorReadBehaviour:
    def test_vector_read_cheaper_than_page_read(self, timing):
        assert timing.vector_read_ns(128) < timing.page_read_ns

    def test_full_page_vector_read_equals_page_read(self, timing):
        assert timing.vector_read_cycles(4096) == pytest.approx(
            timing.page_read_cycles
        )

    @given(ev_size=st.integers(min_value=1, max_value=4096))
    def test_monotone_in_vector_size(self, ev_size):
        timing = SSDTimingModel()
        smaller = timing.vector_read_cycles(ev_size)
        assert smaller <= timing.vector_read_cycles(4096) + 1e-9
        assert smaller >= timing.flush_cycles

    def test_invalid_sizes_rejected(self, timing):
        with pytest.raises(ValueError):
            timing.vector_read_cycles(0)
        with pytest.raises(ValueError):
            timing.vector_read_cycles(4097)

    def test_transfer_portion_scales_linearly(self, timing):
        assert timing.vector_transfer_cycles(2048) == pytest.approx(
            timing.transfer_cycles / 2
        )


class TestDerived:
    def test_qd1_random_read_iops_near_45k(self, timing):
        # Table II reports 45K IOPS for 4K random reads; at queue depth
        # one the device is latency-bound to ~1 / (Tpage + overhead).
        iops = timing.random_read_iops_bound(channels=1)
        assert 40_000 < iops < 50_000

    def test_iops_scales_with_channels(self, timing):
        assert timing.random_read_iops_bound(channels=4) == pytest.approx(
            4 * timing.random_read_iops_bound(channels=1)
        )

    def test_cycle_conversions_roundtrip(self, timing):
        assert timing.ns_to_cycles(timing.cycles_to_ns(123.0)) == pytest.approx(123.0)

    def test_invalid_flush_fraction(self):
        with pytest.raises(ValueError):
            SSDTimingModel(flush_fraction=1.5)


class TestExplicitNsAccessors:
    def test_page_read_ns_matches_us_field(self, timing):
        assert timing.page_read_ns == pytest.approx(timing.page_read_us * 1e3)

    def test_page_program_ns_matches_us_field(self, timing):
        assert timing.page_program_ns == pytest.approx(
            timing.page_program_us * 1e3
        )

    def test_program_ns_alias_is_deprecated(self, timing):
        with pytest.warns(DeprecationWarning, match="page_program_ns"):
            value = timing.program_ns
        assert value == pytest.approx(timing.page_program_ns)
