"""Bitwise pins for the vectorized pooling and translation operators.

``pool_sum`` / ``segment_pool`` / ``sls_batch`` must match the per-row
reference loops bit for bit — fp32 addition is not associative, so the
vectorized forms are written to perform *exactly* the reference's
additions in the reference's order.  ``EVTranslator.translate_array``
must agree with the scalar ``translate`` on every address and on every
error.
"""

import numpy as np
import pytest

from repro.embedding.layout import ExtentRange
from repro.embedding.pooling import (
    pool_sum,
    pool_sum_reference,
    segment_pool,
    sls_all_tables,
    sls_batch,
    sparse_length_sum,
)
from repro.embedding.table import EmbeddingTableSet
from repro.embedding.translator import EVTranslator


def random_vectors(rng, n, dim):
    scale = rng.choice([1e-30, 1e-3, 1.0, 1e3, 1e30], size=(n, 1))
    return (rng.standard_normal((n, dim)) * scale).astype(np.float32)


class TestPoolSum:
    @pytest.mark.parametrize(
        "shape",
        [(0, 8), (1, 1), (5, 1), (129, 1), (130, 1), (1000, 1), (3, 4), (513, 16)],
    )
    def test_matches_reference_bitwise(self, shape):
        rng = np.random.default_rng(shape[0] * 31 + shape[1])
        vectors = random_vectors(rng, *shape)
        assert pool_sum(vectors).tobytes() == pool_sum_reference(vectors).tobytes()

    def test_negative_zero_rows(self):
        vectors = np.full((4, 3), -0.0, dtype=np.float32)
        got = pool_sum(vectors)
        want = pool_sum_reference(vectors)
        assert got.tobytes() == want.tobytes()

    def test_denormals(self):
        rng = np.random.default_rng(0)
        vectors = (rng.standard_normal((200, 4)) * 1e-41).astype(np.float32)
        assert pool_sum(vectors).tobytes() == pool_sum_reference(vectors).tobytes()

    def test_cancellation_heavy(self):
        rng = np.random.default_rng(1)
        base = random_vectors(rng, 100, 8)
        vectors = np.concatenate([base, -base[::-1]])
        assert pool_sum(vectors).tobytes() == pool_sum_reference(vectors).tobytes()

    def test_empty_is_zeros(self):
        out = pool_sum(np.empty((0, 6), dtype=np.float32))
        assert out.tobytes() == np.zeros(6, dtype=np.float32).tobytes()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pool_sum(np.zeros(4, dtype=np.float32))


class TestSegmentPool:
    @staticmethod
    def reference(rows, lengths, mode):
        out = []
        cursor = 0
        for length in lengths:
            segment = rows[cursor : cursor + length]
            cursor += length
            if mode == "mean" and length:
                out.append(
                    (pool_sum_reference(segment) / np.float32(length)).astype(
                        np.float32
                    )
                )
            else:
                out.append(pool_sum_reference(segment))
        return np.stack(out)

    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_matches_per_segment_loop(self, mode):
        rng = np.random.default_rng(11)
        lengths = rng.integers(0, 7, size=40)
        lengths[::5] = 0  # plenty of empty segments
        rows = random_vectors(rng, int(lengths.sum()), 12)
        got = segment_pool(rows, lengths, mode)
        want = self.reference(rows, lengths, mode)
        assert got.tobytes() == want.tobytes()

    def test_single_long_segment(self):
        rng = np.random.default_rng(12)
        rows = random_vectors(rng, 500, 1)
        got = segment_pool(rows, np.array([500]), "sum")
        assert got.tobytes() == pool_sum_reference(rows)[None, :].tobytes()

    def test_coverage_mismatch_rejected(self):
        with pytest.raises(ValueError):
            segment_pool(np.zeros((3, 2), dtype=np.float32), np.array([2, 2]))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            segment_pool(np.zeros((1, 2), dtype=np.float32), np.array([1]), "max")


class TestSlsBatch:
    @pytest.fixture
    def tables(self):
        return EmbeddingTableSet.uniform(4, 64, 8, seed=3)

    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_matches_stacked_scalar_path(self, tables, mode):
        rng = np.random.default_rng(21)
        batch = [
            [
                [int(x) for x in rng.integers(0, 64, size=rng.integers(0, 6))]
                for _ in range(4)
            ]
            for _ in range(5)
        ]
        got = sls_batch(tables, batch, mode)
        want = np.stack([sls_all_tables(tables, sample, mode) for sample in batch])
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()

    def test_all_empty_sample(self, tables):
        batch = [[[], [], [], []]]
        got = sls_batch(tables, batch)
        assert got.tobytes() == np.zeros((1, 32), dtype=np.float32).tobytes()

    def test_wrong_table_count_rejected(self, tables):
        with pytest.raises(ValueError):
            sls_batch(tables, [[[0], [1]]])

    def test_empty_batch_raises_like_stack(self, tables):
        with pytest.raises(ValueError):
            sls_batch(tables, [])

    def test_repeated_indices(self, tables):
        batch = [[[5, 5, 5], [0], [], [63]]]
        got = sls_batch(tables, batch)
        want = np.stack([sls_all_tables(tables, batch[0])])
        assert got.tobytes() == want.tobytes()

    def test_mean_matches_sparse_length_sum(self, tables):
        indices = [1, 2, 3, 3]
        got = sls_batch(tables, [[indices, [], [], []]], "mean")
        want = sparse_length_sum(tables[0], indices, "mean")
        assert got[0, :8].tobytes() == want.tobytes()


class TestTranslateArray:
    @pytest.fixture
    def translator(self):
        translator = EVTranslator(page_size=4096)
        # Two extents with a hole between them: indices 0..63 and
        # 96..159 are covered; 64..95 fall in the hole.
        translator.register_table(
            0,
            [
                ExtentRange(extent_id=0, first_index=0, last_index=63, start_lba=10),
                ExtentRange(extent_id=1, first_index=96, last_index=159, start_lba=40),
            ],
            ev_size=128,
            rows=160,
        )
        return translator

    def test_matches_scalar_on_covered_indices(self, translator):
        covered = list(range(0, 64)) + list(range(96, 160))
        offsets = translator.translate_array(0, covered)
        for index, offset in zip(covered, offsets):
            assert int(offset) == translator.translate(0, index).device_offset

    def test_batch_wrapper_fields_match_scalar(self, translator):
        indices = [0, 31, 63, 96, 159]
        for scalar, batched in zip(
            [translator.translate(0, i) for i in indices],
            translator.translate_batch(0, indices),
        ):
            assert scalar == batched

    def test_empty_input(self, translator):
        out = translator.translate_array(0, [])
        assert out.dtype == np.int64
        assert len(out) == 0

    def test_unregistered_table_keyerror(self, translator):
        with pytest.raises(KeyError):
            translator.translate_array(7, [0])
        with pytest.raises(KeyError):
            translator.translate(7, 0)

    @pytest.mark.parametrize("bad", [-1, 160, 10_000])
    def test_out_of_range_indexerror_parity(self, translator, bad):
        with pytest.raises(IndexError) as scalar_error:
            translator.translate(0, bad)
        with pytest.raises(IndexError) as array_error:
            translator.translate_array(0, [0, bad, 1])
        assert str(scalar_error.value) == str(array_error.value)

    @pytest.mark.parametrize("hole", [64, 80, 95])
    def test_metadata_hole_runtimeerror_parity(self, translator, hole):
        with pytest.raises(RuntimeError) as scalar_error:
            translator.translate(0, hole)
        with pytest.raises(RuntimeError) as array_error:
            translator.translate_array(0, [0, hole])
        assert str(scalar_error.value) == str(array_error.value)

    def test_first_offender_reported(self, translator):
        with pytest.raises(IndexError, match="index 500 "):
            translator.translate_array(0, [0, 500, 700])
